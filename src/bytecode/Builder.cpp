#include "bytecode/Builder.h"

#include "support/Error.h"

#include <cassert>

using namespace jvolve;

MethodBuilder::MethodBuilder(std::string Name, std::string Sig,
                             bool IsStatic) {
  Def.Name = std::move(Name);
  Def.Sig = std::move(Sig);
  Def.IsStatic = IsStatic;
}

MethodBuilder &MethodBuilder::emit(Instr I) {
  assert(!Built && "emitting into a finished method");
  Def.Code.push_back(std::move(I));
  return *this;
}

MethodBuilder &MethodBuilder::locals(uint16_t NumLocals) {
  Def.NumLocals = NumLocals;
  LocalsExplicit = true;
  return *this;
}

MethodBuilder &MethodBuilder::access(Access A) {
  Def.Visibility = A;
  return *this;
}

MethodBuilder &MethodBuilder::iconst(int64_t Value) {
  return emit({Opcode::IConst, Value, "", "", ""});
}

MethodBuilder &MethodBuilder::sconst(const std::string &Literal) {
  return emit({Opcode::SConst, 0, "", "", Literal});
}

MethodBuilder &MethodBuilder::nullconst() {
  return emit({Opcode::NullConst, 0, "", "", ""});
}

MethodBuilder &MethodBuilder::load(uint16_t Slot) {
  MaxSlotTouched = std::max<uint16_t>(MaxSlotTouched, Slot);
  return emit({Opcode::Load, Slot, "", "", ""});
}

MethodBuilder &MethodBuilder::store(uint16_t Slot) {
  MaxSlotTouched = std::max<uint16_t>(MaxSlotTouched, Slot);
  return emit({Opcode::Store, Slot, "", "", ""});
}

MethodBuilder &MethodBuilder::iadd() { return emit({Opcode::IAdd, 0, "", "", ""}); }
MethodBuilder &MethodBuilder::isub() { return emit({Opcode::ISub, 0, "", "", ""}); }
MethodBuilder &MethodBuilder::imul() { return emit({Opcode::IMul, 0, "", "", ""}); }
MethodBuilder &MethodBuilder::idiv() { return emit({Opcode::IDiv, 0, "", "", ""}); }
MethodBuilder &MethodBuilder::irem() { return emit({Opcode::IRem, 0, "", "", ""}); }
MethodBuilder &MethodBuilder::ineg() { return emit({Opcode::INeg, 0, "", "", ""}); }
MethodBuilder &MethodBuilder::dup() { return emit({Opcode::Dup, 0, "", "", ""}); }
MethodBuilder &MethodBuilder::pop() { return emit({Opcode::Pop, 0, "", "", ""}); }

MethodBuilder &MethodBuilder::label(const std::string &Name) {
  if (Labels.count(Name))
    fatalError("duplicate label '" + Name + "' in method " + Def.Name);
  Labels[Name] = Def.Code.size();
  return *this;
}

MethodBuilder &MethodBuilder::jump(const std::string &Target) {
  Fixups.emplace_back(Def.Code.size(), Target);
  return emit({Opcode::Goto, -1, "", "", ""});
}

MethodBuilder &MethodBuilder::branch(Opcode ConditionalOp,
                                     const std::string &Target) {
  switch (ConditionalOp) {
  case Opcode::IfEq: case Opcode::IfNe: case Opcode::IfLt: case Opcode::IfGe:
  case Opcode::IfGt: case Opcode::IfLe: case Opcode::IfICmpEq:
  case Opcode::IfICmpNe: case Opcode::IfICmpLt: case Opcode::IfICmpGe:
  case Opcode::IfICmpGt: case Opcode::IfICmpLe: case Opcode::IfNull:
  case Opcode::IfNonNull: case Opcode::IfACmpEq: case Opcode::IfACmpNe:
    break;
  default:
    fatalError("branch() requires a conditional opcode");
  }
  Fixups.emplace_back(Def.Code.size(), Target);
  return emit({ConditionalOp, -1, "", "", ""});
}

MethodBuilder &MethodBuilder::newobj(const std::string &ClassName) {
  return emit({Opcode::New, 0, ClassName, "", ""});
}

MethodBuilder &MethodBuilder::getfield(const std::string &ClassName,
                                       const std::string &Field,
                                       const std::string &Desc) {
  return emit({Opcode::GetField, 0, ClassName + "." + Field, Desc, ""});
}

MethodBuilder &MethodBuilder::putfield(const std::string &ClassName,
                                       const std::string &Field,
                                       const std::string &Desc) {
  return emit({Opcode::PutField, 0, ClassName + "." + Field, Desc, ""});
}

MethodBuilder &MethodBuilder::getstatic(const std::string &ClassName,
                                        const std::string &Field,
                                        const std::string &Desc) {
  return emit({Opcode::GetStatic, 0, ClassName + "." + Field, Desc, ""});
}

MethodBuilder &MethodBuilder::putstatic(const std::string &ClassName,
                                        const std::string &Field,
                                        const std::string &Desc) {
  return emit({Opcode::PutStatic, 0, ClassName + "." + Field, Desc, ""});
}

MethodBuilder &MethodBuilder::instanceofOp(const std::string &ClassName) {
  return emit({Opcode::InstanceOf, 0, ClassName, "", ""});
}

MethodBuilder &MethodBuilder::checkcast(const std::string &ClassName) {
  return emit({Opcode::CheckCast, 0, ClassName, "", ""});
}

MethodBuilder &MethodBuilder::invokevirtual(const std::string &ClassName,
                                            const std::string &Method,
                                            const std::string &MethodSig) {
  return emit({Opcode::InvokeVirtual, 0, ClassName + "." + Method, MethodSig,
               ""});
}

MethodBuilder &MethodBuilder::invokestatic(const std::string &ClassName,
                                           const std::string &Method,
                                           const std::string &MethodSig) {
  return emit({Opcode::InvokeStatic, 0, ClassName + "." + Method, MethodSig,
               ""});
}

MethodBuilder &MethodBuilder::invokespecial(const std::string &ClassName,
                                            const std::string &Method,
                                            const std::string &MethodSig) {
  return emit({Opcode::InvokeSpecial, 0, ClassName + "." + Method, MethodSig,
               ""});
}

MethodBuilder &MethodBuilder::newarray(const std::string &ElemDesc) {
  return emit({Opcode::NewArray, 0, "", ElemDesc, ""});
}

MethodBuilder &MethodBuilder::aload() { return emit({Opcode::ALoad, 0, "", "", ""}); }
MethodBuilder &MethodBuilder::astore() { return emit({Opcode::AStore, 0, "", "", ""}); }
MethodBuilder &MethodBuilder::arraylength() {
  return emit({Opcode::ArrayLength, 0, "", "", ""});
}

MethodBuilder &MethodBuilder::ret() { return emit({Opcode::Return, 0, "", "", ""}); }
MethodBuilder &MethodBuilder::iret() { return emit({Opcode::IReturn, 0, "", "", ""}); }
MethodBuilder &MethodBuilder::aret() { return emit({Opcode::AReturn, 0, "", "", ""}); }
MethodBuilder &MethodBuilder::nop() { return emit({Opcode::Nop, 0, "", "", ""}); }

MethodBuilder &MethodBuilder::intrinsic(IntrinsicId Id) {
  return emit({Opcode::Intrinsic, static_cast<int64_t>(Id), "", "", ""});
}

MethodBuilder &MethodBuilder::raw(Instr I) { return emit(std::move(I)); }

MethodDef MethodBuilder::build() {
  assert(!Built && "method built twice");
  Built = true;
  for (const auto &[Index, Label] : Fixups) {
    auto It = Labels.find(Label);
    if (It == Labels.end())
      fatalError("unbound label '" + Label + "' in method " + Def.Name);
    Def.Code[Index].IVal = static_cast<int64_t>(It->second);
  }
  if (!LocalsExplicit) {
    uint16_t ParamSlots = Def.numParamSlots();
    uint16_t Needed = Def.Code.empty() && MaxSlotTouched == 0
                          ? ParamSlots
                          : static_cast<uint16_t>(MaxSlotTouched + 1);
    Def.NumLocals = std::max(ParamSlots, Needed);
  }
  return Def;
}

ClassBuilder::ClassBuilder(std::string Name, std::string Super) {
  Def.Name = std::move(Name);
  Def.Super = std::move(Super);
}

ClassBuilder &ClassBuilder::field(const std::string &Name,
                                  const std::string &Desc, Access A,
                                  bool IsFinal) {
  Def.Fields.push_back({Name, Desc, /*IsStatic=*/false, IsFinal, A});
  return *this;
}

ClassBuilder &ClassBuilder::staticField(const std::string &Name,
                                        const std::string &Desc, Access A) {
  Def.Fields.push_back({Name, Desc, /*IsStatic=*/true, /*IsFinal=*/false, A});
  return *this;
}

MethodBuilder &ClassBuilder::method(const std::string &Name,
                                    const std::string &Sig) {
  Methods.push_back(
      std::make_unique<MethodBuilder>(Name, Sig, /*IsStatic=*/false));
  return *Methods.back();
}

MethodBuilder &ClassBuilder::staticMethod(const std::string &Name,
                                          const std::string &Sig) {
  Methods.push_back(
      std::make_unique<MethodBuilder>(Name, Sig, /*IsStatic=*/true));
  return *Methods.back();
}

ClassDef ClassBuilder::build() {
  assert(!Built && "class built twice");
  Built = true;
  for (auto &MB : Methods)
    Def.Methods.push_back(MB->build());
  return Def;
}
