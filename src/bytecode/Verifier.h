//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniVM bytecode verifier.
///
/// Jvolve "relies on bytecode verification to statically type-check updated
/// classes" (paper §1): an update is only type-safe because the *entire new
/// program version* verifies before it is installed. This verifier performs
/// abstract interpretation over a type lattice per method and whole-program
/// resolution checks (superclasses exist, no hierarchy cycles, every
/// symbolic field/method reference resolves with matching types and
/// accessibility).
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_BYTECODE_VERIFIER_H
#define JVOLVE_BYTECODE_VERIFIER_H

#include "bytecode/ClassDef.h"

#include <optional>
#include <string>
#include <vector>

namespace jvolve {

/// One verification diagnostic.
struct VerifyError {
  std::string ClassName;
  std::string MethodName; ///< empty for class-level errors
  int Pc = -1;            ///< bytecode index, -1 for non-code errors
  std::string Message;

  /// Renders "Class.method@pc: message".
  std::string str() const;
};

/// Verifies complete program versions (ClassSets).
class Verifier {
public:
  /// \p Set must already contain the built-in classes (ensureBuiltins).
  explicit Verifier(const ClassSet &Set) : Set(Set) {}

  /// Verifies every class; returns all diagnostics (empty means the program
  /// is type-correct and safe to load).
  std::vector<VerifyError> verifyAll() const;

  /// Verifies a single class (hierarchy + every method body).
  void verifyClass(const ClassDef &Cls, std::vector<VerifyError> &Errs) const;

  /// Verifies a single method body in the context of its class.
  void verifyMethod(const ClassDef &Cls, const MethodDef &M,
                    std::vector<VerifyError> &Errs) const;

private:
  const ClassSet &Set;
};

/// Convenience: true if \p Set verifies with no errors. \p Set must contain
/// the built-ins.
bool verifies(const ClassSet &Set);

/// The abstract operand-stack shape at one bytecode index: one rendered
/// lattice value per slot, bottom of stack first ("int", "null", a class
/// name, or "[<elem>" for arrays).
using StackShape = std::vector<std::string>;

/// Runs the verifier's abstract interpretation over \p M (in the context of
/// \p Cls and \p Set) and returns the inferred operand-stack shape at every
/// program counter: nullopt for unreachable pcs, a shape for reachable
/// ones. \returns an empty vector when the method does not verify — callers
/// (the static update-safety analyzer checking ActiveMethodMapping pc maps)
/// must treat that as "no shape information".
std::vector<std::optional<StackShape>>
computeStackShapes(const ClassSet &Set, const ClassDef &Cls,
                   const MethodDef &M);

} // namespace jvolve

#endif // JVOLVE_BYTECODE_VERIFIER_H
