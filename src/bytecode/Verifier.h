//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniVM bytecode verifier.
///
/// Jvolve "relies on bytecode verification to statically type-check updated
/// classes" (paper §1): an update is only type-safe because the *entire new
/// program version* verifies before it is installed. This verifier performs
/// abstract interpretation over a type lattice per method and whole-program
/// resolution checks (superclasses exist, no hierarchy cycles, every
/// symbolic field/method reference resolves with matching types and
/// accessibility).
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_BYTECODE_VERIFIER_H
#define JVOLVE_BYTECODE_VERIFIER_H

#include "bytecode/ClassDef.h"

#include <string>
#include <vector>

namespace jvolve {

/// One verification diagnostic.
struct VerifyError {
  std::string ClassName;
  std::string MethodName; ///< empty for class-level errors
  int Pc = -1;            ///< bytecode index, -1 for non-code errors
  std::string Message;

  /// Renders "Class.method@pc: message".
  std::string str() const;
};

/// Verifies complete program versions (ClassSets).
class Verifier {
public:
  /// \p Set must already contain the built-in classes (ensureBuiltins).
  explicit Verifier(const ClassSet &Set) : Set(Set) {}

  /// Verifies every class; returns all diagnostics (empty means the program
  /// is type-correct and safe to load).
  std::vector<VerifyError> verifyAll() const;

  /// Verifies a single class (hierarchy + every method body).
  void verifyClass(const ClassDef &Cls, std::vector<VerifyError> &Errs) const;

  /// Verifies a single method body in the context of its class.
  void verifyMethod(const ClassDef &Cls, const MethodDef &M,
                    std::vector<VerifyError> &Errs) const;

private:
  const ClassSet &Set;
};

/// Convenience: true if \p Set verifies with no errors. \p Set must contain
/// the built-ins.
bool verifies(const ClassSet &Set);

} // namespace jvolve

#endif // JVOLVE_BYTECODE_VERIFIER_H
