#include "bytecode/Type.h"

#include "support/Error.h"

#include <cassert>

using namespace jvolve;

/// Parses one type descriptor starting at \p Pos in \p S. On success,
/// advances \p Pos past the descriptor and returns true.
static bool consumeDescriptor(const std::string &S, size_t &Pos) {
  if (Pos >= S.size())
    return false;
  switch (S[Pos]) {
  case 'V':
  case 'I':
    ++Pos;
    return true;
  case 'L': {
    size_t End = S.find(';', Pos);
    if (End == std::string::npos || End == Pos + 1)
      return false;
    Pos = End + 1;
    return true;
  }
  case '[':
    ++Pos;
    // Void cannot be an element type.
    if (Pos < S.size() && S[Pos] == 'V')
      return false;
    return consumeDescriptor(S, Pos);
  default:
    return false;
  }
}

bool Type::isValidDescriptor(const std::string &Descriptor) {
  size_t Pos = 0;
  return consumeDescriptor(Descriptor, Pos) && Pos == Descriptor.size();
}

Type Type::parse(const std::string &Descriptor) {
  if (!isValidDescriptor(Descriptor))
    fatalError("malformed type descriptor: '" + Descriptor + "'");
  switch (Descriptor[0]) {
  case 'V':
    return Type(Kind::Void, Descriptor);
  case 'I':
    return Type(Kind::Int, Descriptor);
  case 'L':
    return Type(Kind::Ref, Descriptor);
  case '[':
    return Type(Kind::Array, Descriptor);
  default:
    unreachable("descriptor validated but unparseable");
  }
}

std::string Type::className() const {
  assert(isRef() && "className() requires a Ref type");
  return Desc.substr(1, Desc.size() - 2);
}

Type Type::elementType() const {
  assert(isArray() && "elementType() requires an Array type");
  return Type::parse(Desc.substr(1));
}

bool MethodSignature::isValidSignature(const std::string &Descriptor) {
  if (Descriptor.empty() || Descriptor[0] != '(')
    return false;
  size_t Pos = 1;
  while (Pos < Descriptor.size() && Descriptor[Pos] != ')') {
    // Parameters may not be void.
    if (Descriptor[Pos] == 'V')
      return false;
    if (!consumeDescriptor(Descriptor, Pos))
      return false;
  }
  if (Pos >= Descriptor.size() || Descriptor[Pos] != ')')
    return false;
  ++Pos;
  size_t RetStart = Pos;
  if (!consumeDescriptor(Descriptor, Pos) || Pos != Descriptor.size())
    return false;
  (void)RetStart;
  return true;
}

MethodSignature MethodSignature::parse(const std::string &Descriptor) {
  if (!isValidSignature(Descriptor))
    fatalError("malformed method signature: '" + Descriptor + "'");
  MethodSignature Sig;
  size_t Pos = 1;
  while (Descriptor[Pos] != ')') {
    size_t Start = Pos;
    consumeDescriptor(Descriptor, Pos);
    Sig.Params.push_back(Type::parse(Descriptor.substr(Start, Pos - Start)));
  }
  Sig.Return = Type::parse(Descriptor.substr(Pos + 1));
  return Sig;
}

std::string MethodSignature::descriptor() const {
  std::string Out = "(";
  for (const Type &P : Params)
    Out += P.descriptor();
  Out += ")";
  Out += Return.descriptor();
  return Out;
}
