#include "bytecode/Printer.h"

#include <cstdio>

using namespace jvolve;

std::string jvolve::printInstr(const Instr &I) {
  std::string Out = opcodeName(I.Op);
  switch (I.Op) {
  case Opcode::IConst:
  case Opcode::Load:
  case Opcode::Store:
    Out += " " + std::to_string(I.IVal);
    break;
  case Opcode::SConst:
    Out += " \"" + I.Str + "\"";
    break;
  case Opcode::Goto:
  case Opcode::IfEq: case Opcode::IfNe: case Opcode::IfLt: case Opcode::IfGe:
  case Opcode::IfGt: case Opcode::IfLe: case Opcode::IfICmpEq:
  case Opcode::IfICmpNe: case Opcode::IfICmpLt: case Opcode::IfICmpGe:
  case Opcode::IfICmpGt: case Opcode::IfICmpLe: case Opcode::IfNull:
  case Opcode::IfNonNull: case Opcode::IfACmpEq: case Opcode::IfACmpNe:
    Out += " @" + std::to_string(I.IVal);
    break;
  case Opcode::New:
  case Opcode::InstanceOf:
  case Opcode::CheckCast:
    Out += " " + I.Sym;
    break;
  case Opcode::GetField: case Opcode::PutField:
  case Opcode::GetStatic: case Opcode::PutStatic:
    Out += " " + I.Sym + " " + I.Sig;
    break;
  case Opcode::InvokeVirtual: case Opcode::InvokeStatic:
  case Opcode::InvokeSpecial:
    Out += " " + I.Sym + I.Sig;
    break;
  case Opcode::NewArray:
    Out += " " + I.Sig;
    break;
  case Opcode::Intrinsic:
    Out += std::string(" ") +
           intrinsicName(static_cast<IntrinsicId>(I.IVal));
    break;
  default:
    break;
  }
  return Out;
}

std::string jvolve::printMethod(const MethodDef &M) {
  std::string Out;
  Out += M.IsStatic ? "static " : "";
  Out += M.Name + M.Sig + " locals=" + std::to_string(M.NumLocals) + " {\n";
  for (size_t Pc = 0; Pc < M.Code.size(); ++Pc) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "  %4zu: ", Pc);
    Out += Buf;
    Out += printInstr(M.Code[Pc]);
    Out += '\n';
  }
  Out += "}\n";
  return Out;
}

std::string jvolve::printClass(const ClassDef &C) {
  std::string Out = "class " + C.Name;
  if (!C.Super.empty())
    Out += " extends " + C.Super;
  Out += " {\n";
  for (const FieldDef &F : C.Fields) {
    Out += "  ";
    if (F.IsStatic)
      Out += "static ";
    if (F.IsFinal)
      Out += "final ";
    Out += F.TypeDesc + " " + F.Name + ";\n";
  }
  for (const MethodDef &M : C.Methods) {
    std::string Body = printMethod(M);
    // Indent the method block by two spaces.
    Out += "  ";
    for (size_t I = 0; I < Body.size(); ++I) {
      Out += Body[I];
      if (Body[I] == '\n' && I + 1 != Body.size())
        Out += "  ";
    }
  }
  Out += "}\n";
  return Out;
}
