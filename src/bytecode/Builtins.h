//===----------------------------------------------------------------------===//
///
/// \file
/// Built-in classes every MiniVM program implicitly contains: the root
/// class "Object" and the immutable "String" class (whose payload lives in
/// the VM string table, referenced by a hidden int field).
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_BYTECODE_BUILTINS_H
#define JVOLVE_BYTECODE_BUILTINS_H

#include "bytecode/ClassDef.h"

namespace jvolve {

/// Name of the implicit root class.
inline const char *const ObjectClassName = "Object";

/// Name of the built-in string class.
inline const char *const StringClassName = "String";

/// Hidden field on String holding the VM string-table index.
inline const char *const StringIdField = "$id";

/// Adds Object and String to \p Set if absent. Idempotent; the VM calls
/// this on every program it loads, and the verifier assumes it ran.
void ensureBuiltins(ClassSet &Set);

/// \returns true if \p Name is one of the built-in class names.
bool isBuiltinClass(const std::string &Name);

/// Signature of intrinsic \p Id as a method descriptor (see IntrinsicId).
std::string intrinsicSignature(IntrinsicId Id);

} // namespace jvolve

#endif // JVOLVE_BYTECODE_BUILTINS_H
