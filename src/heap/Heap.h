//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniVM heap: two equally sized semi-spaces with bump-pointer
/// allocation, as used by the Jikes RVM semi-space copying collector the
/// paper builds on (§3.4).
///
/// Mutators allocate in the current space. During a collection the
/// collector copies live objects into the other space and then flips.
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_HEAP_HEAP_H
#define JVOLVE_HEAP_HEAP_H

#include "runtime/ClassRegistry.h"
#include "runtime/Slot.h"
#include "support/Telemetry.h"

#include <cstddef>
#include <memory>

namespace jvolve {

/// Two semi-spaces plus typed allocation helpers.
class Heap {
public:
  /// Creates a heap whose semi-spaces hold \p SpaceBytes each (total
  /// footprint is 2 * SpaceBytes, like any semi-space collector).
  explicit Heap(size_t SpaceBytes);

  /// Raw bump allocation in the current space; returns nullptr when full
  /// (the VM then triggers a collection and retries).
  Ref allocateRaw(size_t Bytes);

  /// Raw bump allocation in the other space; used only by the collector
  /// while copying. Aborts on exhaustion: a collection that overflows
  /// to-space cannot make progress.
  Ref allocateInOtherSpace(size_t Bytes);

  /// Like allocateInOtherSpace, but returns nullptr on exhaustion instead
  /// of aborting. DSU collections use this: overflowing to-space with
  /// duplicate + new-version copies is a recoverable update failure, not a
  /// VM bug.
  Ref tryAllocateInOtherSpace(size_t Bytes);

  //===--------------------------------------------------------------------===//
  // Update transaction support. A DSU collection moves the live heap into
  // the other space and flips, but never mutates from-space object bodies
  // (only header forwarding marks) — so from-space doubles as the undo
  // log. A TxSnapshot taken before the update records which space was
  // current and how full it was; txRollback() makes that space current
  // again, discards everything the update copied or allocated, and frees
  // any old-copy block. The caller must then clear the forwarding marks
  // and restore the root set from its own snapshot.
  //===--------------------------------------------------------------------===//

  struct TxSnapshot {
    int CurrentIndex = 0;
    size_t BumpBytes = 0;
  };

  TxSnapshot txSnapshot() const { return {Current, Bump[Current]}; }

  void txRollback(const TxSnapshot &S);

  //===--------------------------------------------------------------------===//
  // Old-copy space (paper §3.5): "We could instead copy the old versions
  // to a special block of memory and reclaim it when the collection
  // completes." A DSU collection may place the duplicates of old-version
  // objects here instead of to-space; the DSU layer releases the block as
  // soon as the transformers have run, instead of waiting for the next
  // collection to reclaim the duplicates.
  //===--------------------------------------------------------------------===//

  /// Reserves an old-copy block of at least \p Bytes. Idempotent per
  /// update; aborts if a block is already in use.
  void reserveOldCopySpace(size_t Bytes);

  /// Bump allocation inside the reserved block; aborts on exhaustion.
  Ref allocateInOldCopySpace(size_t Bytes);

  /// Like allocateInOldCopySpace, but returns nullptr on exhaustion. DSU
  /// collections use this: an undersized old-copy reserve is a recoverable
  /// update failure (rollback), not a VM bug.
  Ref tryAllocateInOldCopySpace(size_t Bytes);

  /// Frees the block (all old copies die instantly).
  void releaseOldCopySpace();

  bool hasOldCopySpace() const { return OldCopy != nullptr; }
  size_t oldCopyBytesUsed() const { return OldCopyBump; }
  uint8_t *oldCopyStart() const { return OldCopy.get(); }

  /// Allocates and zero-initializes an instance of \p Cls (non-array).
  /// Returns nullptr when the current space is full.
  Ref allocateObject(const RtClass &Cls);

  /// Allocates a zeroed array of \p Length elements of class \p ArrCls.
  Ref allocateArray(const RtClass &ArrCls, int64_t Length);

  /// Swaps the roles of the spaces. The bytes the collector wrote to the
  /// other space become the live heap; the old space becomes free.
  void flip();

  /// \returns true if \p Obj points into the space mutators currently
  /// allocate from.
  bool inCurrentSpace(Ref Obj) const;
  /// \returns true if \p Obj points into the copy space.
  bool inOtherSpace(Ref Obj) const;

  uint8_t *currentSpaceStart() const { return Spaces[Current].get(); }
  uint8_t *otherSpaceStart() const { return Spaces[1 - Current].get(); }

  size_t bytesAllocated() const { return Bump[Current]; }
  size_t otherBytesAllocated() const { return Bump[1 - Current]; }
  size_t spaceBytes() const { return SpaceBytes; }

  /// Number of objects allocated by mutators since construction.
  uint64_t objectsAllocated() const { return NumAllocated; }

private:
  size_t SpaceBytes;
  std::unique_ptr<uint8_t[]> Spaces[2];
  size_t Bump[2] = {0, 0};
  int Current = 0;
  uint64_t NumAllocated = 0;

  std::unique_ptr<uint8_t[]> OldCopy;
  size_t OldCopyBump = 0;
  size_t OldCopyCapacity = 0;

  // Telemetry handles, resolved once at construction (allocation paths
  // must not do name lookups).
  TelCounter &TelObjectsAllocated;
  TelCounter &TelBytesAllocated;
};

} // namespace jvolve

#endif // JVOLVE_HEAP_HEAP_H
