#include "heap/HeapVerifier.h"

#include "runtime/ObjectModel.h"

#include <set>
#include <sstream>

using namespace jvolve;

bool HeapVerifier::isValidObjectStart(Ref Obj) const {
  return Obj >= TheHeap.currentSpaceStart() &&
         Obj < TheHeap.currentSpaceStart() + TheHeap.bytesAllocated();
}

std::vector<std::string> HeapVerifier::verify(
    const std::function<void(const std::function<void(Ref &)> &)>
        &EnumerateRoots) {
  std::vector<std::string> Problems;
  auto Report = [&Problems](const std::string &Msg) {
    if (Problems.size() < 32) // cap the flood on catastrophic corruption
      Problems.push_back(Msg);
  };

  // Pass 1: linear walk; collect valid object starts.
  std::set<Ref> Starts;
  uint8_t *Base = TheHeap.currentSpaceStart();
  size_t Offset = 0;
  while (Offset < TheHeap.bytesAllocated()) {
    Ref Obj = Base + Offset;
    ObjectHeader *H = header(Obj);
    if (H->Class >= Registry.numClasses()) {
      Report("object at +" + std::to_string(Offset) +
             " has invalid class id " + std::to_string(H->Class));
      break; // cannot size it; the walk is lost
    }
    const RtClass &Cls = Registry.cls(H->Class);
    if (H->Flags & FlagForwarded)
      Report("object at +" + std::to_string(Offset) + " (" + Cls.Name +
             ") is forwarded outside a collection");
    if (H->Flags & FlagUninitialized) {
      // Lazy mode: a shell may stay uninitialized while the engine still
      // lists it as pending — it must then also carry the barrier flag.
      bool PendingShell = (H->Flags & FlagLazyPending) &&
                          LazyIsPendingShell && LazyIsPendingShell(Obj);
      if (!PendingShell)
        Report("object at +" + std::to_string(Offset) + " (" + Cls.Name +
               ") is uninitialized outside an update");
    } else if (H->Flags & FlagLazyPending) {
      Report("object at +" + std::to_string(Offset) + " (" + Cls.Name +
             ") carries a lazy-pending flag but is initialized");
    }
    if (Cls.IsArray != ((H->Flags & FlagArray) != 0))
      Report("object at +" + std::to_string(Offset) +
             " array flag disagrees with class " + Cls.Name);
    if (Cls.IsArray &&
        Cls.ElemIsRef != ((H->Flags & FlagRefArray) != 0))
      Report("array at +" + std::to_string(Offset) +
             " ref-array flag disagrees with element kind of " + Cls.Name);

    size_t Bytes = objectBytes(Cls, Obj);
    if (Offset + Bytes > TheHeap.bytesAllocated()) {
      Report("object at +" + std::to_string(Offset) + " (" + Cls.Name +
             ") extends past the allocated heap");
      break;
    }
    Starts.insert(Obj);
    Offset += (Bytes + 7) & ~size_t(7);
  }

  auto CheckRef = [&](Ref Val, const std::string &Where) {
    if (!Val)
      return;
    if (!isValidObjectStart(Val))
      Report(Where + " points outside the live heap");
    else if (!Starts.count(Val))
      Report(Where + " points into the middle of an object");
  };

  // Pass 2: every reference field/element. A class focus (partial
  // certification) narrows the non-array field checks to the impacted
  // classes; arrays are always checked because element stores are cheap
  // to validate and arrays carry no per-class layout to have changed.
  NumSkipped = 0;
  for (Ref Obj : Starts) {
    const RtClass &Cls = Registry.cls(classOf(Obj));
    if (HasClassFocus && !Cls.IsArray && !ClassFocus.count(Cls.Name)) {
      ++NumSkipped;
      continue;
    }
    if (Cls.IsArray) {
      if (!Cls.ElemIsRef)
        continue;
      int64_t Len = arrayLength(Obj);
      for (int64_t I = 0; I < Len; ++I)
        CheckRef(getRefAt(Obj, arrayElemOffset(I)),
                 Cls.Name + "[" + std::to_string(I) + "]");
    } else {
      for (const RtField &F : Cls.InstanceFields)
        if (F.IsRef)
          CheckRef(getRefAt(Obj, F.Offset), Cls.Name + "." + F.Name);
    }
  }

  // Pass 3: roots.
  size_t RootIndex = 0;
  EnumerateRoots([&](Ref &R) {
    CheckRef(R, "root #" + std::to_string(RootIndex));
    ++RootIndex;
  });

  // The old-copy block must be released once nothing legitimately holds
  // it (eager updates release it right after the transformers; a lazy
  // engine at barrier retirement).
  if (TheHeap.hasOldCopySpace() && !AllowOldCopyReserved)
    Report("old-copy space still reserved (" +
           std::to_string(TheHeap.oldCopyBytesUsed()) +
           " bytes) with no update draining");

  return Problems;
}
