#include "heap/Heap.h"

#include "runtime/ObjectModel.h"
#include "support/Error.h"

#include <cstring>

using namespace jvolve;

/// Keep every object 8-byte aligned.
static size_t alignUp(size_t Bytes) { return (Bytes + 7) & ~size_t(7); }

Heap::Heap(size_t Bytes)
    : SpaceBytes(alignUp(Bytes)),
      TelObjectsAllocated(
          Telemetry::global().counter(metrics::HeapObjectsAllocated)),
      TelBytesAllocated(
          Telemetry::global().counter(metrics::HeapBytesAllocated)) {
  if (SpaceBytes < 4096)
    fatalError("heap semi-space too small");
  // Spaces are never read before being written (objects are zeroed at
  // allocation), so skip the value-initialization memset.
  Spaces[0] = std::make_unique_for_overwrite<uint8_t[]>(SpaceBytes);
  Spaces[1] = std::make_unique_for_overwrite<uint8_t[]>(SpaceBytes);
}

Ref Heap::allocateRaw(size_t Bytes) {
  Bytes = alignUp(Bytes);
  if (Bump[Current] + Bytes > SpaceBytes)
    return nullptr;
  Ref Obj = Spaces[Current].get() + Bump[Current];
  Bump[Current] += Bytes;
  return Obj;
}

Ref Heap::allocateInOtherSpace(size_t Bytes) {
  Bytes = alignUp(Bytes);
  int Other = 1 - Current;
  if (Bump[Other] + Bytes > SpaceBytes)
    fatalError("to-space exhausted during collection; "
               "enlarge the heap (DSU needs room for duplicate copies)");
  Ref Obj = Spaces[Other].get() + Bump[Other];
  Bump[Other] += Bytes;
  return Obj;
}

Ref Heap::tryAllocateInOtherSpace(size_t Bytes) {
  Bytes = alignUp(Bytes);
  int Other = 1 - Current;
  if (Bump[Other] + Bytes > SpaceBytes)
    return nullptr;
  Ref Obj = Spaces[Other].get() + Bump[Other];
  Bump[Other] += Bytes;
  return Obj;
}

void Heap::txRollback(const TxSnapshot &S) {
  // Works whether or not the failed update reached flip(): make the
  // snapshot's space current again at its snapshot fill level, and empty
  // the other space (everything the aborted collection copied there is
  // garbage). flip() zeroed the old space's bump, so the saved value is
  // authoritative either way.
  Current = S.CurrentIndex;
  Bump[Current] = S.BumpBytes;
  Bump[1 - Current] = 0;
  if (OldCopy)
    releaseOldCopySpace();
}

Ref Heap::allocateObject(const RtClass &Cls) {
  assert(!Cls.IsArray && "use allocateArray for arrays");
  Ref Obj = allocateRaw(Cls.InstanceSize);
  if (!Obj)
    return nullptr;
  std::memset(Obj, 0, Cls.InstanceSize);
  ObjectHeader *H = header(Obj);
  H->Class = Cls.Id;
  H->Flags = 0;
  ++NumAllocated;
  TelObjectsAllocated.inc();
  TelBytesAllocated.add(Cls.InstanceSize);
  return Obj;
}

Ref Heap::allocateArray(const RtClass &ArrCls, int64_t Length) {
  assert(ArrCls.IsArray && "allocateArray requires an array class");
  assert(Length >= 0 && "negative array length reaches the trap path first");
  size_t Bytes = arrayBytes(Length);
  Ref Obj = allocateRaw(Bytes);
  if (!Obj)
    return nullptr;
  std::memset(Obj, 0, Bytes);
  ObjectHeader *H = header(Obj);
  H->Class = ArrCls.Id;
  H->Flags = FlagArray | (ArrCls.ElemIsRef ? FlagRefArray : 0u);
  setIntAt(Obj, ArrayLengthOffset, Length);
  ++NumAllocated;
  TelObjectsAllocated.inc();
  TelBytesAllocated.add(Bytes);
  return Obj;
}

void Heap::reserveOldCopySpace(size_t Bytes) {
  if (OldCopy)
    fatalError("old-copy space already in use");
  OldCopyCapacity = alignUp(Bytes);
  OldCopy = std::make_unique_for_overwrite<uint8_t[]>(OldCopyCapacity);
  OldCopyBump = 0;
}

Ref Heap::allocateInOldCopySpace(size_t Bytes) {
  Ref Obj = tryAllocateInOldCopySpace(Bytes);
  if (!Obj)
    fatalError("old-copy space exhausted during collection");
  return Obj;
}

Ref Heap::tryAllocateInOldCopySpace(size_t Bytes) {
  assert(OldCopy && "old-copy space not reserved");
  Bytes = alignUp(Bytes);
  if (OldCopyBump + Bytes > OldCopyCapacity)
    return nullptr;
  Ref Obj = OldCopy.get() + OldCopyBump;
  OldCopyBump += Bytes;
  return Obj;
}

void Heap::releaseOldCopySpace() {
  OldCopy.reset();
  OldCopyBump = 0;
  OldCopyCapacity = 0;
}

void Heap::flip() {
  Bump[Current] = 0;
  Current = 1 - Current;
}

bool Heap::inCurrentSpace(Ref Obj) const {
  return Obj >= Spaces[Current].get() &&
         Obj < Spaces[Current].get() + SpaceBytes;
}

bool Heap::inOtherSpace(Ref Obj) const {
  return Obj >= Spaces[1 - Current].get() &&
         Obj < Spaces[1 - Current].get() + SpaceBytes;
}
