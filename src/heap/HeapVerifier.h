//===----------------------------------------------------------------------===//
///
/// \file
/// Heap-invariant verifier: a debug pass that walks the live heap and
/// every root set, checking the invariants the collector and the DSU
/// update machinery must preserve. Tests run it after collections and
/// after dynamic updates.
///
/// Checked invariants:
///  * every object header carries a valid, loaded class id;
///  * no object is marked forwarded or uninitialized outside a collection
///    (uninitialized objects only exist between the DSU copy phase and
///    the transformer phase);
///  * object extents stay inside the current semi-space;
///  * every reference field/element/root is null or points to the start
///    of a live object in the current space;
///  * reference-array flags agree with the array class's element kind.
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_HEAP_HEAPVERIFIER_H
#define JVOLVE_HEAP_HEAPVERIFIER_H

#include "heap/Heap.h"
#include "runtime/ClassRegistry.h"

#include <functional>
#include <set>
#include <string>
#include <vector>

namespace jvolve {

/// Walks the heap and roots; returns human-readable invariant violations
/// (empty = healthy heap).
class HeapVerifier {
public:
  HeapVerifier(Heap &TheHeap, ClassRegistry &Registry)
      : TheHeap(TheHeap), Registry(Registry) {}

  /// Relaxes the invariants for a draining lazy update. \p IsPendingShell
  /// says whether an object is an untransformed shell registered with the
  /// live engine — only those may stay uninitialized (and must also carry
  /// FlagLazyPending); anything else uninitialized is still corruption, so
  /// once the engine reports drained every leftover shell is flagged.
  /// \p AllowOldCopyReserved tolerates a still-reserved old-copy block
  /// (the engine holds it until barrier retirement); when false a reserved
  /// block is reported as leaked.
  void setLazyContext(std::function<bool(Ref)> IsPendingShell,
                      bool AllowOldCopyReserved) {
    LazyIsPendingShell = std::move(IsPendingShell);
    this->AllowOldCopyReserved = AllowOldCopyReserved;
  }

  /// Partial certification (impact-bounded updates): when set, the per-field
  /// reference checks of pass 2 run only for non-array objects whose class
  /// name is in \p Classes. Every object still gets the structural pass-1
  /// checks (header flags, class ids, sizing, linear-walk integrity), arrays
  /// are always checked in full, and root checking is unaffected — the
  /// update-impact closure proves the skipped classes' field graphs are
  /// byte-identical to the already-certified pre-update heap.
  void setClassFocus(std::set<std::string> Classes) {
    ClassFocus = std::move(Classes);
    HasClassFocus = true;
  }

  /// Non-array objects whose field checks the class focus skipped during
  /// the last verify() run.
  size_t objectsSkipped() const { return NumSkipped; }

  /// Verifies the linear heap layout and every object's fields.
  /// \p EnumerateRoots visits every root reference (same contract as the
  /// collector's root enumerator); pass the VM's enumerator.
  std::vector<std::string>
  verify(const std::function<void(const std::function<void(Ref &)> &)>
             &EnumerateRoots);

private:
  bool isValidObjectStart(Ref Obj) const;

  Heap &TheHeap;
  ClassRegistry &Registry;
  std::function<bool(Ref)> LazyIsPendingShell;
  bool AllowOldCopyReserved = false;
  std::set<std::string> ClassFocus;
  bool HasClassFocus = false;
  size_t NumSkipped = 0;
};

} // namespace jvolve

#endif // JVOLVE_HEAP_HEAPVERIFIER_H
