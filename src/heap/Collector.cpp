#include "heap/Collector.h"

#include "runtime/ObjectModel.h"
#include "support/Error.h"
#include "support/Stopwatch.h"
#include "support/Telemetry.h"

#include <cassert>
#include <cstring>

using namespace jvolve;

Ref Collector::dsuAllocate(size_t Bytes, const char *What) {
  if (Faults && Faults->probe(FaultInjector::Site::GcAllocExhaustion))
    throw UpdateError("dsu-gc", std::string("injected to-space exhaustion "
                                            "while allocating ") +
                                    What);
  Ref Obj = TheHeap.tryAllocateInOtherSpace(Bytes);
  if (!Obj)
    throw UpdateError("dsu-gc",
                      std::string("to-space exhausted while allocating ") +
                          What +
                          "; the live heap plus duplicate old copies does "
                          "not fit (enlarge the heap or enable the "
                          "old-copy space)");
  return Obj;
}

Ref Collector::forward(Ref Obj, const DsuRemap *Remap,
                       std::vector<UpdateLogEntry> *UpdateLog,
                       std::unordered_map<Ref, size_t> *NewToLogIndex,
                       CollectionStats &Stats) {
  if (!Obj)
    return nullptr;
  ObjectHeader *H = header(Obj);
  if (H->Flags & FlagForwarded)
    return H->Forward;

  const RtClass &Cls = Registry.cls(H->Class);
  size_t Bytes = objectBytes(Cls, Obj);

  if (Remap) {
    auto It = Remap->OldToNew.find(H->Class);
    if (It != Remap->OldToNew.end()) {
      assert(UpdateLog && "DSU collection requires an update log");
      const RtClass &NewCls = Registry.cls(It->second);
      assert(!NewCls.IsArray && "array classes are never remapped");

      // Uninitialized new-version object: new class, zeroed fields.
      Ref NewObj = dsuAllocate(NewCls.InstanceSize, "a new-version object");
      std::memset(NewObj, 0, NewCls.InstanceSize);
      ObjectHeader *NewH = header(NewObj);
      NewH->Class = NewCls.Id;
      NewH->Flags =
          FlagUninitialized | (Remap->LazyShells ? FlagLazyPending : 0u);

      // Duplicate of the old version, scanned like any live object so its
      // fields get forwarded into to-space. Placement depends on the
      // §3.5 old-copy-space option.
      Ref OldCopy;
      if (Remap->OldCopiesInSeparateSpace) {
        OldCopy = TheHeap.tryAllocateInOldCopySpace(Bytes);
        if (!OldCopy)
          throw UpdateError(
              "dsu-gc",
              "old-copy space exhausted while allocating an old-version "
              "duplicate; raise OldCopyReserveLimitBytes or let the "
              "collector reserve the worst case");
      } else {
        OldCopy = dsuAllocate(Bytes, "an old-version duplicate");
      }
      std::memcpy(OldCopy, Obj, Bytes);
      header(OldCopy)->Flags &= ~FlagForwarded;

      H->Flags |= FlagForwarded;
      H->Forward = NewObj;

      if (NewToLogIndex)
        NewToLogIndex->emplace(NewObj, UpdateLog->size());
      UpdateLog->push_back({OldCopy, NewObj, UpdateLogEntry::State::Pending});

      ++Stats.ObjectsRemapped;
      Stats.ObjectsCopied += 2;
      Stats.BytesCopied += Bytes + NewCls.InstanceSize;
      return NewObj;
    }
  }

  Ref Copy = Remap ? dsuAllocate(Bytes, "a live-object copy")
                   : TheHeap.allocateInOtherSpace(Bytes);
  std::memcpy(Copy, Obj, Bytes);
  H->Flags |= FlagForwarded;
  H->Forward = Copy;
  ++Stats.ObjectsCopied;
  Stats.BytesCopied += Bytes;
  return Copy;
}

CollectionStats Collector::collect(
    const RootEnumerator &EnumerateRoots, const DsuRemap *Remap,
    std::vector<UpdateLogEntry> *UpdateLog,
    std::unordered_map<Ref, size_t> *NewToLogIndex) {
  Stopwatch Timer;
  CollectionStats Stats;
  size_t LiveBeforeBytes = TheHeap.bytesAllocated();

  assert(TheHeap.otherBytesAllocated() == 0 &&
         "to-space must be empty at the start of a collection");

  bool UseOldSpace = Remap && Remap->OldCopiesInSeparateSpace;
  if (UseOldSpace) {
    // Worst case: every live object is a duplicate candidate. An explicit
    // limit trades that guarantee for a smaller block (and a recoverable
    // UpdateError when it proves too small).
    size_t Reserve = TheHeap.bytesAllocated();
    if (Remap->OldCopyReserveLimitBytes &&
        Remap->OldCopyReserveLimitBytes < Reserve)
      Reserve = Remap->OldCopyReserveLimitBytes;
    TheHeap.reserveOldCopySpace(Reserve);
  }

  auto Fwd = [&](Ref &Loc) {
    Loc = forward(Loc, Remap, UpdateLog, NewToLogIndex, Stats);
  };

  EnumerateRoots(Fwd);

  /// Forwards every reference field of \p Obj; \returns its aligned size.
  auto ScanObject = [&](Ref Obj) -> size_t {
    ObjectHeader *H = header(Obj);
    const RtClass &Cls = Registry.cls(H->Class);
    size_t Bytes = objectBytes(Cls, Obj);

    if (H->Flags & FlagUninitialized) {
      // Fresh new-version object: all fields zero; nothing to scan. The
      // transformers populate it after the collection ends.
    } else if (Cls.IsArray) {
      if (Cls.ElemIsRef) {
        int64_t Len = arrayLength(Obj);
        for (int64_t I = 0; I < Len; ++I) {
          Ref Elem = getRefAt(Obj, arrayElemOffset(I));
          if (Elem)
            setRefAt(Obj, arrayElemOffset(I),
                     forward(Elem, Remap, UpdateLog, NewToLogIndex, Stats));
        }
      }
    } else {
      for (const RtField &F : Cls.InstanceFields) {
        if (!F.IsRef)
          continue;
        Ref Val = getRefAt(Obj, F.Offset);
        if (Val)
          setRefAt(Obj, F.Offset,
                   forward(Val, Remap, UpdateLog, NewToLogIndex, Stats));
      }
    }
    return (Bytes + 7) & ~size_t(7);
  };

  // Cheney scan. Copies extend to-space; old duplicates may extend the
  // old-copy space; both regions are scanned to a joint fixpoint.
  size_t ScanTo = 0, ScanOld = 0;
  bool Progress = true;
  while (Progress) {
    Progress = false;
    while (ScanTo < TheHeap.otherBytesAllocated()) {
      ScanTo += ScanObject(TheHeap.otherSpaceStart() + ScanTo);
      Progress = true;
    }
    while (UseOldSpace && ScanOld < TheHeap.oldCopyBytesUsed()) {
      ScanOld += ScanObject(TheHeap.oldCopyStart() + ScanOld);
      Progress = true;
    }
  }

  if (UseOldSpace)
    Stats.OldCopySpaceBytes = TheHeap.oldCopyBytesUsed();
  TheHeap.flip();
  Stats.GcMs = Timer.elapsedMs();

  if (Telemetry::isEnabled()) {
    Telemetry &Tel = Telemetry::global();
    Tel.counter(metrics::GcCollections).inc();
    Tel.histogram(metrics::GcPauseMs).record(Stats.GcMs);
    Tel.counter(metrics::GcBytesCopied).add(Stats.BytesCopied);
    Tel.counter(metrics::GcObjectsCopied).add(Stats.ObjectsCopied);
    if (LiveBeforeBytes > 0)
      Tel.histogram(metrics::GcSurvivorRate)
          .record(static_cast<double>(Stats.BytesCopied) /
                  static_cast<double>(LiveBeforeBytes));
    if (Remap) {
      Tel.counter(metrics::GcDsuCollections).inc();
      Tel.histogram(metrics::GcDsuPauseMs).record(Stats.GcMs);
      Tel.counter(metrics::GcDsuBytesCopied).add(Stats.BytesCopied);
      Tel.counter(metrics::GcDsuObjectsRemapped).add(Stats.ObjectsRemapped);
    }
  }
  return Stats;
}
