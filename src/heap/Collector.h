//===----------------------------------------------------------------------===//
///
/// \file
/// Semi-space copying collector with the Jvolve DSU extension (paper §3.4).
///
/// A normal collection performs a Cheney traversal: roots are forwarded
/// into to-space, then to-space is scanned linearly, forwarding every
/// reference field.
///
/// When a DsuRemap is supplied (during a dynamic update), objects whose
/// class signature changed are handled specially: the collector allocates
/// an *uninitialized new-version object* (new class, new size) plus a
/// *duplicate of the old object* in to-space, installs the forwarding
/// pointer to the new version, and appends the (old copy, new object) pair
/// to the update log. The old copy is scanned normally, so its fields end
/// up pointing at to-space (new-version) objects — exactly the state the
/// object transformer functions expect. After the collection the DSU layer
/// runs the transformers over the log; clearing the log makes the old
/// copies unreachable, so the *next* collection reclaims them.
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_HEAP_COLLECTOR_H
#define JVOLVE_HEAP_COLLECTOR_H

#include "heap/Heap.h"
#include "runtime/ClassRegistry.h"
#include "support/FaultInjector.h"

#include <functional>
#include <unordered_map>
#include <vector>

namespace jvolve {

/// Classes whose instances must be transformed: old class id -> new.
struct DsuRemap {
  std::unordered_map<ClassId, ClassId> OldToNew;

  /// §3.5 optimization: place the duplicates of old-version objects in a
  /// dedicated block (Heap's old-copy space) instead of to-space, so the
  /// DSU layer can reclaim it the moment the transformers finish rather
  /// than waiting for the next collection.
  bool OldCopiesInSeparateSpace = false;

  /// Caps the old-copy block at this many bytes (0 = worst case: the whole
  /// live heap). The collector reserves the worst case by default, which
  /// can never overflow; a cap makes the exhaustion path reachable, so an
  /// undersized reserve rolls the update back instead of aborting the VM.
  size_t OldCopyReserveLimitBytes = 0;

  /// Lazy-transform mode: mark every new-version shell FlagLazyPending in
  /// addition to FlagUninitialized. The LazyTransformEngine adopts the
  /// update log after the collection and transforms shells on first touch.
  bool LazyShells = false;
};

/// One pending object transformation recorded during a DSU collection.
struct UpdateLogEntry {
  Ref OldCopy = nullptr; ///< duplicate of the old-version object (to-space)
  Ref NewObj = nullptr;  ///< uninitialized new-version object (to-space)

  /// Transformer progress, used for the recursive force-transform path and
  /// its cycle detection (paper §3.4). Failed marks an entry whose lazy
  /// post-commit transformer threw: the update cannot roll back anymore, so
  /// the shell stays a valid default-initialized object and is never
  /// retried (the update is reported degraded instead).
  enum class State : uint8_t { Pending, InProgress, Done, Failed };
  State St = State::Pending;
};

/// Measurements for one collection.
struct CollectionStats {
  double GcMs = 0;            ///< wall-clock time of the copying phase
  uint64_t ObjectsCopied = 0; ///< live objects moved to to-space
  uint64_t BytesCopied = 0;
  uint64_t ObjectsRemapped = 0; ///< objects queued for transformation
  /// Bytes of old-version duplicates placed in the separate old-copy
  /// space (0 when the default to-space placement was used).
  uint64_t OldCopySpaceBytes = 0;
};

/// The collector. Stateless between collections; borrows the heap and
/// registry.
class Collector {
public:
  Collector(Heap &TheHeap, ClassRegistry &Registry)
      : TheHeap(TheHeap), Registry(Registry) {}

  /// Installs the VM's fault injector. Only DSU collections probe it
  /// (Site::GcAllocExhaustion); normal collections are never failed.
  void setFaultInjector(FaultInjector *FI) { Faults = FI; }

  /// Enumerator over every root reference location. Implementations call
  /// the supplied callback once per root slot holding a non-null Ref.
  using RootEnumerator =
      std::function<void(const std::function<void(Ref &)> &)>;

  /// Runs one full-heap collection.
  ///
  /// \param EnumerateRoots visits statics, thread stacks, and VM handles.
  /// \param Remap non-null during a dynamic update.
  /// \param UpdateLog receives (old copy, new object) pairs; required when
  ///        \p Remap is non-null.
  /// \param NewToLogIndex receives new-object -> log-index entries so the
  ///        transformer runtime can force-transform a referenced object in
  ///        O(1) (the paper caches a pointer to the old version instead of
  ///        scanning the log).
  ///
  /// A DSU collection (\p Remap non-null) throws UpdateError("dsu-gc", ...)
  /// when to-space cannot hold the live heap plus the duplicate old copies,
  /// or when the gc-alloc-exhaustion fault site fires — the heap is left
  /// mid-copy and the updater must txRollback. Normal collections never
  /// throw; to-space exhaustion there is a fatal VM bug.
  CollectionStats collect(const RootEnumerator &EnumerateRoots,
                          const DsuRemap *Remap = nullptr,
                          std::vector<UpdateLogEntry> *UpdateLog = nullptr,
                          std::unordered_map<Ref, size_t> *NewToLogIndex =
                              nullptr);

private:
  Ref forward(Ref Obj, const DsuRemap *Remap,
              std::vector<UpdateLogEntry> *UpdateLog,
              std::unordered_map<Ref, size_t> *NewToLogIndex,
              CollectionStats &Stats);

  /// Allocates \p Bytes in to-space for a DSU copy, throwing
  /// UpdateError("dsu-gc") on exhaustion or an injected fault.
  Ref dsuAllocate(size_t Bytes, const char *What);

  Heap &TheHeap;
  ClassRegistry &Registry;
  FaultInjector *Faults = nullptr;
};

} // namespace jvolve

#endif // JVOLVE_HEAP_COLLECTOR_H
