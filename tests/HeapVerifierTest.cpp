//===----------------------------------------------------------------------===//
///
/// \file
/// Heap-invariant verifier tests: healthy heaps after allocation, GC, and
/// dynamic updates report no problems; seeded corruptions are detected.
/// Used as a property check over DSU scenarios.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "dsu/Transformers.h"
#include "dsu/Updater.h"
#include "dsu/Upt.h"
#include "heap/HeapVerifier.h"
#include "runtime/ObjectModel.h"

#include <gtest/gtest.h>

using namespace jvolve;
using namespace jvolve::test;

namespace {

ClassSet pairVersion(bool Extra) {
  ClassSet Set;
  ClassBuilder P("PairX");
  P.field("v", "I");
  P.field("other", "LPairX;");
  if (Extra)
    P.field("extra", "I");
  Set.add(P.build());
  ClassBuilder H("H");
  H.staticField("root", "LPairX;");
  Set.add(H.build());
  return Set;
}

std::vector<std::string> verifyHeap(VM &TheVM) {
  HeapVerifier V(TheVM.heap(), TheVM.registry());
  return V.verify([&TheVM](const std::function<void(Ref &)> &Visit) {
    TheVM.visitRoots(Visit);
  });
}

Ref makePair(VM &TheVM, int64_t V, Ref Other) {
  Ref Obj = TheVM.allocateObject(TheVM.registry().idOf("PairX"));
  TransformCtx Ctx(TheVM, nullptr);
  Ctx.setInt(Obj, "v", V);
  Ctx.setRef(Obj, "other", Other);
  return Obj;
}

} // namespace

TEST(HeapVerifier, CleanAfterAllocation) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(pairVersion(false));
  Ref A = makePair(TheVM, 1, nullptr);
  Ref B = makePair(TheVM, 2, A);
  TheVM.registry().cls(TheVM.registry().idOf("H")).Statics[0] =
      Slot::ofRef(B);
  EXPECT_TRUE(verifyHeap(TheVM).empty());
}

TEST(HeapVerifier, CleanAfterCollection) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(pairVersion(false));
  Ref Live = makePair(TheVM, 7, nullptr);
  TheVM.registry().cls(TheVM.registry().idOf("H")).Statics[0] =
      Slot::ofRef(Live);
  for (int I = 0; I < 5'000; ++I)
    makePair(TheVM, I, nullptr); // garbage
  TheVM.collectGarbage();
  std::vector<std::string> Problems = verifyHeap(TheVM);
  EXPECT_TRUE(Problems.empty())
      << (Problems.empty() ? "" : Problems.front());
}

TEST(HeapVerifier, CleanAfterDynamicUpdate) {
  for (bool OldCopySpace : {false, true}) {
    VM TheVM(smallConfig());
    TheVM.loadProgram(pairVersion(false));
    Ref A = makePair(TheVM, 1, nullptr);
    Ref B = makePair(TheVM, 2, A);
    TheVM.registry().cls(TheVM.registry().idOf("H")).Statics[0] =
        Slot::ofRef(B);

    UpdateOptions Opts;
    Opts.UseOldCopySpace = OldCopySpace;
    Updater U(TheVM);
    ASSERT_EQ(
        U.applyNow(Upt::prepare(pairVersion(false), pairVersion(true), "v1"),
                   Opts)
            .Status,
        UpdateStatus::Applied);
    std::vector<std::string> Problems = verifyHeap(TheVM);
    // The update leaves the (unreachable) old duplicates in the heap in
    // default mode; they are well-formed objects, so the walk stays
    // clean either way.
    EXPECT_TRUE(Problems.empty())
        << (Problems.empty() ? "" : Problems.front());
  }
}

TEST(HeapVerifier, DetectsDanglingFieldPointer) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(pairVersion(false));
  Ref A = makePair(TheVM, 1, nullptr);
  TheVM.registry().cls(TheVM.registry().idOf("H")).Statics[0] =
      Slot::ofRef(A);
  // Point a ref field outside the heap.
  static uint8_t Junk[64];
  TransformCtx Ctx(TheVM, nullptr);
  Ctx.setRef(A, "other", Junk);
  std::vector<std::string> Problems = verifyHeap(TheVM);
  ASSERT_FALSE(Problems.empty());
  EXPECT_NE(Problems[0].find("outside the live heap"), std::string::npos);
}

TEST(HeapVerifier, DetectsInteriorPointer) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(pairVersion(false));
  Ref A = makePair(TheVM, 1, nullptr);
  Ref B = makePair(TheVM, 2, nullptr);
  TheVM.registry().cls(TheVM.registry().idOf("H")).Statics[0] =
      Slot::ofRef(A);
  TransformCtx Ctx(TheVM, nullptr);
  Ctx.setRef(A, "other", B + 8); // interior pointer
  std::vector<std::string> Problems = verifyHeap(TheVM);
  ASSERT_FALSE(Problems.empty());
  EXPECT_NE(Problems[0].find("middle of an object"), std::string::npos);
}

TEST(HeapVerifier, DetectsCorruptClassId) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(pairVersion(false));
  Ref A = makePair(TheVM, 1, nullptr);
  header(A)->Class = 0xDEAD;
  std::vector<std::string> Problems = verifyHeap(TheVM);
  ASSERT_FALSE(Problems.empty());
  EXPECT_NE(Problems[0].find("invalid class id"), std::string::npos);
}

TEST(HeapVerifier, DetectsStaleForwardingFlag) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(pairVersion(false));
  Ref A = makePair(TheVM, 1, nullptr);
  header(A)->Flags |= FlagForwarded;
  std::vector<std::string> Problems = verifyHeap(TheVM);
  ASSERT_FALSE(Problems.empty());
  EXPECT_NE(Problems[0].find("forwarded"), std::string::npos);
}

TEST(HeapVerifier, DetectsCorruptRoot) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(pairVersion(false));
  static uint8_t Junk[64];
  TheVM.pinnedRoots().push_back(Junk);
  std::vector<std::string> Problems = verifyHeap(TheVM);
  ASSERT_FALSE(Problems.empty());
  TheVM.pinnedRoots().clear();
}

TEST(HeapVerifier, LazyShellsAllowedOnlyWhileEngineVouchesForThem) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(pairVersion(false));
  Ref A = makePair(TheVM, 1, nullptr);
  TheVM.registry().cls(TheVM.registry().idOf("H")).Statics[0] =
      Slot::ofRef(A);
  header(A)->Flags |= FlagUninitialized | FlagLazyPending;
  auto Roots = [&TheVM](const std::function<void(Ref &)> &Visit) {
    TheVM.visitRoots(Visit);
  };

  // Without a lazy context, an uninitialized object is corruption.
  std::vector<std::string> Problems = verifyHeap(TheVM);
  ASSERT_FALSE(Problems.empty());
  EXPECT_NE(Problems[0].find("uninitialized"), std::string::npos);

  // While a draining engine lists the shell as pending, it is legitimate.
  {
    HeapVerifier V(TheVM.heap(), TheVM.registry());
    V.setLazyContext([A](Ref O) { return O == A; },
                     /*AllowOldCopyReserved=*/true);
    EXPECT_TRUE(V.verify(Roots).empty());
  }

  // Once the engine reports drained it no longer vouches for anything:
  // a leftover shell is corruption again.
  {
    HeapVerifier V(TheVM.heap(), TheVM.registry());
    V.setLazyContext([](Ref) { return false; },
                     /*AllowOldCopyReserved=*/false);
    std::vector<std::string> P = V.verify(Roots);
    ASSERT_FALSE(P.empty());
    EXPECT_NE(P[0].find("uninitialized"), std::string::npos);
  }
  header(A)->Flags &= ~(FlagUninitialized | FlagLazyPending);
}

TEST(HeapVerifier, DetectsLazyFlagOnInitializedObject) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(pairVersion(false));
  Ref A = makePair(TheVM, 1, nullptr);
  TheVM.registry().cls(TheVM.registry().idOf("H")).Statics[0] =
      Slot::ofRef(A);
  // A barrier flag on a fully initialized object means a transform settled
  // without clearing it — every later read would take the slow path.
  header(A)->Flags |= FlagLazyPending;
  std::vector<std::string> Problems = verifyHeap(TheVM);
  ASSERT_FALSE(Problems.empty());
  EXPECT_NE(Problems[0].find("lazy-pending"), std::string::npos);
  header(A)->Flags &= ~FlagLazyPending;
}

TEST(HeapVerifier, ReportsOldCopySpaceHeldWithNoDrainingUpdate) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(pairVersion(false));
  TheVM.heap().reserveOldCopySpace(1u << 12);
  auto Roots = [&TheVM](const std::function<void(Ref &)> &Visit) {
    TheVM.visitRoots(Visit);
  };

  // Reserved with nothing draining: a leak, reported.
  std::vector<std::string> Problems = verifyHeap(TheVM);
  ASSERT_FALSE(Problems.empty());
  EXPECT_NE(Problems[0].find("old-copy space still reserved"),
            std::string::npos);

  // Legitimate while a lazy engine still drains.
  {
    HeapVerifier V(TheVM.heap(), TheVM.registry());
    V.setLazyContext([](Ref) { return false; },
                     /*AllowOldCopyReserved=*/true);
    EXPECT_TRUE(V.verify(Roots).empty());
  }
  TheVM.heap().releaseOldCopySpace();
  EXPECT_TRUE(verifyHeap(TheVM).empty());
}

TEST(HeapVerifier, CleanAcrossAppUpdateStream) {
  // Property sweep: the heap stays well-formed after every applied update
  // of the CrossFTP stream (smallest of the three apps).
  VM TheVM(smallConfig());
  TheVM.loadProgram(pairVersion(false));
  // (App streams are exercised in AppsTest; here we chain three updates
  // on one VM and verify after each.)
  ClassSet V1 = pairVersion(false);
  ClassSet V2 = pairVersion(true);
  ClassSet V3 = pairVersion(true);
  V3.find("PairX")->Fields.push_back({"third", "I", false, false,
                                      Access::Public});
  Ref A = makePair(TheVM, 3, nullptr);
  TheVM.registry().cls(TheVM.registry().idOf("H")).Statics[0] =
      Slot::ofRef(A);

  Updater U(TheVM);
  ASSERT_EQ(U.applyNow(Upt::prepare(V1, V2, "s1")).Status,
            UpdateStatus::Applied);
  EXPECT_TRUE(verifyHeap(TheVM).empty());
  ASSERT_EQ(U.applyNow(Upt::prepare(V2, V3, "s2")).Status,
            UpdateStatus::Applied);
  EXPECT_TRUE(verifyHeap(TheVM).empty());
  TheVM.collectGarbage();
  EXPECT_TRUE(verifyHeap(TheVM).empty());
}
