//===----------------------------------------------------------------------===//
///
/// \file
/// Per-method code-versioning tests: chain lifecycle (install, atomic
/// switch, stacked chains, revert pop), poll-point observation and stale
/// frames finishing on superseded code, transactional unwind under the
/// `codeversion-install` fault, the quiescence Degrade rung landing
/// through the manager, and EcUpdater parity across the 22 release
/// streams.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "apps/CrossFtpApp.h"
#include "apps/EmailApp.h"
#include "apps/JettyApp.h"
#include "dsu/CodeVersion.h"
#include "dsu/EcUpdater.h"
#include "dsu/Updater.h"
#include "dsu/Upt.h"
#include "support/FaultInjector.h"

#include <gtest/gtest.h>

using namespace jvolve;
using namespace jvolve::test;

namespace {

/// Main.run()I returns K; Main.aux()I returns K+10. Bumping K is a
/// strictly body-only diff touching two methods.
ClassSet pairProgram(int64_t K) {
  ClassSet Set;
  ClassBuilder CB("Main");
  CB.staticMethod("run", "()I").iconst(K).iret();
  CB.staticMethod("aux", "()I").iconst(K + 10).iret();
  Set.add(CB.build());
  return Set;
}

/// Ctl.stop gates Spin.spin()V: add K to Spin.sum, sleep, loop until
/// halted. Changing K (plus a size-changing nop) is strictly body-only,
/// and the spinner's in-flight frame never returns until Ctl.halt().
ClassSet spinStopProgram(int64_t K, bool V2 = false) {
  ClassSet Set;
  {
    ClassBuilder CB("Ctl");
    CB.staticField("stop", "I");
    CB.staticMethod("halt", "()V")
        .iconst(1)
        .putstatic("Ctl", "stop", "I")
        .ret();
    Set.add(CB.build());
  }
  {
    ClassBuilder CB("Spin");
    CB.staticField("sum", "I");
    MethodBuilder &M = CB.staticMethod("spin", "()V");
    M.label("top")
        .getstatic("Ctl", "stop", "I")
        .branch(Opcode::IfNe, "done")
        .getstatic("Spin", "sum", "I")
        .iconst(K);
    if (V2)
      M.nop();
    M.iadd()
        .putstatic("Spin", "sum", "I")
        .iconst(20)
        .intrinsic(IntrinsicId::SleepTicks)
        .jump("top")
        .label("done")
        .ret();
    Set.add(CB.build());
  }
  return Set;
}

/// spinStopProgram plus class D, which gains a field in v2 — so the full
/// bundle needs a class update and only the spin body can degrade.
ClassSet degradeProgram(int64_t K, bool V2) {
  ClassSet Set = spinStopProgram(K, V2);
  ClassBuilder CB("D");
  CB.field("x", "I");
  if (V2)
    CB.field("y", "I");
  Set.add(CB.build());
  return Set;
}

MethodId methodIdOf(VM &TheVM, const std::string &Cls,
                    const std::string &Name, const std::string &Sig) {
  ClassRegistry &Reg = TheVM.registry();
  return Reg.resolveMethod(Reg.idOf(Cls), Name, Sig);
}

int64_t staticIntOf(VM &TheVM, const char *Cls, size_t Slot) {
  ClassRegistry &Reg = TheVM.registry();
  return Reg.cls(Reg.idOf(Cls)).Statics[Slot].IntVal;
}

bool hasEvent(const UpdateResult &R, UpdateEventKind K) {
  for (const UpdateEvent &E : R.Trace.events())
    if (E.Kind == K)
      return true;
  return false;
}

UpdateOptions versionedOpts() {
  UpdateOptions Opts;
  Opts.CodeVersioning = true;
  return Opts;
}

} // namespace

//===--- Chain lifecycle ----------------------------------------------------===//

TEST(CodeVersion, VersionedInstallSwitchesWithoutSafePoint) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(pairProgram(1));
  EXPECT_EQ(TheVM.callStatic("Main", "run", "()I").IntVal, 1);
  EXPECT_EQ(TheVM.callStatic("Main", "aux", "()I").IntVal, 11);
  MethodId Run = methodIdOf(TheVM, "Main", "run", "()I");
  uint64_t HeatBefore = TheVM.registry().method(Run).InvokeCount;
  EXPECT_GE(HeatBefore, 1u);

  Updater U(TheVM);
  UpdateResult R = U.applyNow(
      Upt::prepare(pairProgram(1), pairProgram(2), "v1"), versionedOpts());

  ASSERT_EQ(R.Status, UpdateStatus::Applied) << R.Message;
  EXPECT_TRUE(R.CodeVersioned);
  EXPECT_EQ(R.CodeVersionedMethods, 2);
  EXPECT_EQ(R.SafePointAttempts, 0);
  EXPECT_EQ(R.TicksToSafePoint, 0u);
  EXPECT_TRUE(R.Certified) << "registry certification should pass";
  EXPECT_TRUE(hasEvent(R, UpdateEventKind::CodeVersionInstalled));
  EXPECT_TRUE(hasEvent(R, UpdateEventKind::CodeVersionSwitched));
  EXPECT_FALSE(hasEvent(R, UpdateEventKind::SafePointAttempt));

  // Both bodies switched; the chains record v0 -> v1.
  EXPECT_EQ(TheVM.callStatic("Main", "run", "()I").IntVal, 2);
  EXPECT_EQ(TheVM.callStatic("Main", "aux", "()I").IntVal, 12);
  CodeVersionManager &CVM = CodeVersionManager::of(TheVM);
  EXPECT_EQ(CVM.epoch(), 1u);
  EXPECT_EQ(CVM.installs(), 2u);
  EXPECT_EQ(CVM.chains(), 2u);
  const MethodVersionChain *VC = CVM.chainFor(Run);
  ASSERT_NE(VC, nullptr);
  ASSERT_EQ(VC->Chain.size(), 2u);
  EXPECT_EQ(VC->Chain.back().VersionId, 1u);
  EXPECT_EQ(VC->Chain.back().Tag, "v1");
  EXPECT_EQ(VC->Chain.front().Tag, "v0");
  // The install preserved the profile heat instead of re-profiling from
  // zero (setMethodBody alone would reset it) — repromotion, not restart.
  EXPECT_GE(TheVM.registry().method(Run).InvokeCount, HeatBefore);
}

TEST(CodeVersion, StackedInstallsComposeAndRevertPops) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(pairProgram(1));
  MethodId Run = methodIdOf(TheVM, "Main", "run", "()I");
  Updater U(TheVM);

  ASSERT_EQ(U.applyNow(Upt::prepare(pairProgram(1), pairProgram(2), "v1"),
                       versionedOpts())
                .Status,
            UpdateStatus::Applied);
  ASSERT_EQ(U.applyNow(Upt::prepare(pairProgram(2), pairProgram(3), "v2"),
                       versionedOpts())
                .Status,
            UpdateStatus::Applied);

  CodeVersionManager &CVM = CodeVersionManager::of(TheVM);
  const MethodVersionChain *VC = CVM.chainFor(Run);
  ASSERT_NE(VC, nullptr);
  ASSERT_EQ(VC->Chain.size(), 3u); // v0 -> v1 -> v2 stacked
  EXPECT_EQ(VC->Chain.back().VersionId, 2u);
  EXPECT_EQ(TheVM.callStatic("Main", "run", "()I").IntVal, 3);

  // Installing the parent's exact bodies pops the chains instead of
  // growing them — the body-only revert path.
  UpdateResult R = U.applyNow(
      Upt::prepare(pairProgram(3), pairProgram(2), "undo"), versionedOpts());
  ASSERT_EQ(R.Status, UpdateStatus::Applied) << R.Message;
  EXPECT_TRUE(hasEvent(R, UpdateEventKind::CodeVersionReverted));
  EXPECT_EQ(CVM.revertPops(), 2u); // run + aux both popped
  VC = CVM.chainFor(Run);
  ASSERT_EQ(VC->Chain.size(), 2u);
  EXPECT_EQ(VC->Chain.back().VersionId, 1u);
  EXPECT_EQ(VC->Chain.back().Tag, "v1");
  EXPECT_EQ(TheVM.callStatic("Main", "run", "()I").IntVal, 2);
  EXPECT_EQ(CVM.epoch(), 3u); // every batch committed one switch
}

//===--- Poll observation and stale frames ----------------------------------===//

TEST(CodeVersion, InFlightFrameFinishesOnOldVersion) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(spinStopProgram(1));
  TheVM.spawnThread("Spin", "spin", "()V", {}, "spinner", true);
  TheVM.run(500);

  Updater U(TheVM);
  UpdateResult R =
      U.applyNow(Upt::prepare(spinStopProgram(1), spinStopProgram(1000, true),
                              "v1"),
                 versionedOpts());
  ASSERT_EQ(R.Status, UpdateStatus::Applied) << R.Message;
  ASSERT_TRUE(R.CodeVersioned);

  CodeVersionManager &CVM = CodeVersionManager::of(TheVM);
  EXPECT_GE(CVM.staleFrames(), 1u) << "spinner still on the superseded body";

  // The stale frame keeps stepping by the OLD constant: rejit semantics,
  // in-flight activations never see the switch mid-frame.
  int64_t Before = staticIntOf(TheVM, "Spin", 0);
  TheVM.run(2'000);
  int64_t Delta = staticIntOf(TheVM, "Spin", 0) - Before;
  EXPECT_GT(Delta, 0);
  EXPECT_LT(Delta, 1000) << "frame adopted the new body mid-flight";
  // Threads stamped the new epoch at their poll points while the stale
  // frame kept running.
  EXPECT_GE(CVM.pollObservations(), 1u);

  // Once the spinner returns, the stale count drops to zero and fresh
  // activations run the new body.
  TheVM.callStatic("Ctl", "halt", "()V");
  TheVM.run(50'000);
  EXPECT_EQ(CVM.staleFrames(), 0u);
  int64_t AtHalt = staticIntOf(TheVM, "Spin", 0);
  ClassRegistry &Reg = TheVM.registry();
  Reg.cls(Reg.idOf("Ctl")).Statics[0] = Slot::ofInt(0); // re-open the gate
  TheVM.spawnThread("Spin", "spin", "()V", {}, "spinner2", true);
  TheVM.run(100);
  TheVM.callStatic("Ctl", "halt", "()V");
  TheVM.run(50'000);
  int64_t Delta2 = staticIntOf(TheVM, "Spin", 0) - AtHalt;
  EXPECT_GT(Delta2, 0);
  EXPECT_EQ(Delta2 % 1000, 0) << "fresh activation must run the new body";
}

//===--- Transactional unwind -----------------------------------------------===//

TEST(CodeVersion, FaultedInstallUnwindsAndPriorVersionsServe) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(pairProgram(1));
  // First probe passes, second fires: the batch fails mid-chain with one
  // method already swapped.
  TheVM.faults().arm(FaultInjector::Site::CodeVersionInstall, /*Fire=*/1,
                     /*Skip=*/1);

  Updater U(TheVM);
  UpdateResult R = U.applyNow(
      Upt::prepare(pairProgram(1), pairProgram(2), "v1"), versionedOpts());

  ASSERT_EQ(R.Status, UpdateStatus::RolledBack) << R.Message;
  EXPECT_NE(R.Message.find("codeversion-install"), std::string::npos)
      << R.Message;
  EXPECT_FALSE(R.CodeVersioned);

  // The swapped prefix unwound: both methods serve the old bodies, no
  // chain survives, and the epoch never advanced — no thread could have
  // observed the partial switch.
  EXPECT_EQ(TheVM.callStatic("Main", "run", "()I").IntVal, 1);
  EXPECT_EQ(TheVM.callStatic("Main", "aux", "()I").IntVal, 11);
  CodeVersionManager &CVM = CodeVersionManager::of(TheVM);
  EXPECT_EQ(CVM.epoch(), 0u);
  EXPECT_EQ(CVM.chains(), 0u);
  EXPECT_EQ(CVM.chainFor(methodIdOf(TheVM, "Main", "run", "()I")), nullptr);

  // The site disarms after firing: the retry commits.
  UpdateResult R2 = U.applyNow(
      Upt::prepare(pairProgram(1), pairProgram(2), "v1"), versionedOpts());
  ASSERT_EQ(R2.Status, UpdateStatus::Applied) << R2.Message;
  EXPECT_EQ(TheVM.callStatic("Main", "run", "()I").IntVal, 2);
}

//===--- Quiescence Degrade rung --------------------------------------------===//

TEST(CodeVersion, DegradeRungLandsThroughVersionChains) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(degradeProgram(1, false));
  TheVM.spawnThread("Spin", "spin", "()V", {}, "spinner", true);
  TheVM.run(500);

  Updater U(TheVM);
  UpdateOptions Opts;
  Opts.TimeoutTicks = 5'000;
  Opts.AllowDegraded = true;
  UpdateResult R = U.applyNow(
      Upt::prepare(degradeProgram(1, false), degradeProgram(2, true), "v1"),
      Opts);

  ASSERT_EQ(R.Status, UpdateStatus::Degraded) << R.Message;
  EXPECT_EQ(R.ResolvedRung, QuiescenceRung::Degrade);

  // The degraded body subset landed through the version chains — an
  // atomic switch, not a safe-point install — so the manager now exists
  // on the VM with the spin body versioned.
  CodeVersionManager &CVM = CodeVersionManager::of(TheVM);
  EXPECT_GE(CVM.installs(), 1u);
  EXPECT_EQ(CVM.epoch(), 1u);
  const MethodVersionChain *VC =
      CVM.chainFor(methodIdOf(TheVM, "Spin", "spin", "()V"));
  ASSERT_NE(VC, nullptr);
  EXPECT_EQ(VC->Chain.size(), 2u);
  // The in-flight spinner keeps running the superseded body.
  EXPECT_GE(CVM.staleFrames(), 1u);
}

//===--- EcUpdater parity across the release streams ------------------------===//

TEST(CodeVersion, StreamParityBodyOnlyReleasesCertifyThroughManager) {
  if (codeVersionModeForced())
    GTEST_SKIP() << "parity needs a safe-point pipeline twin, but "
                    "JVOLVE_CODEVERSION=1 forces every body-only bundle "
                    "through the version chains";
  AppModel Apps[] = {makeJettyApp(), makeEmailApp(), makeCrossFtpApp()};
  int Total = 0, EcOk = 0, BodyOnly = 0;
  for (const AppModel &App : Apps) {
    for (size_t V = 1; V < App.numVersions(); ++V) {
      ++Total;
      const ClassSet &Prev = App.version(V - 1);
      const ClassSet &Next = App.version(V);
      UpdateSpec Spec = Upt::computeSpec(Prev, Next);
      if (EcUpdater::supports(Spec.Summary))
        ++EcOk;
      bool StrictlyBodyOnly =
          Spec.ClassUpdates.empty() && Spec.AddedClasses.empty() &&
          Spec.DeletedClasses.empty() && Spec.RemovedMethods.empty() &&
          !Spec.MethodBodyUpdates.empty();
      if (!StrictlyBodyOnly)
        continue;
      ++BodyOnly;
      SCOPED_TRACE(App.name() + " " + App.release(V).Name);

      // Versioned commit.
      VM::Config C;
      C.HeapSpaceBytes = 8u << 20;
      VM Versioned(C);
      Versioned.loadProgram(Prev);
      UpdateResult RV = Updater(Versioned).applyNow(
          Upt::prepare(Prev, Next, App.release(V).Name), versionedOpts());
      ASSERT_EQ(RV.Status, UpdateStatus::Applied) << RV.Message;
      EXPECT_TRUE(RV.CodeVersioned);
      EXPECT_EQ(RV.CodeVersionedMethods,
                static_cast<int>(Spec.MethodBodyUpdates.size()));
      EXPECT_TRUE(RV.Certified);

      // Full safe-point pipeline on a twin VM.
      VM Pipeline(C);
      Pipeline.loadProgram(Prev);
      UpdateResult RP = Updater(Pipeline).applyNow(
          Upt::prepare(Prev, Next, App.release(V).Name));
      ASSERT_EQ(RP.Status, UpdateStatus::Applied) << RP.Message;
      EXPECT_FALSE(RP.CodeVersioned);
      EXPECT_TRUE(RP.Certified);

      // Parity: both paths left the identical active body per method.
      for (const MethodRef &M : Spec.MethodBodyUpdates) {
        MethodId IdV = methodIdOf(Versioned, M.ClassName, M.Name, M.Sig);
        MethodId IdP = methodIdOf(Pipeline, M.ClassName, M.Name, M.Sig);
        ASSERT_NE(IdV, InvalidMethodId) << M.key();
        ASSERT_NE(IdP, InvalidMethodId) << M.key();
        EXPECT_TRUE(Versioned.registry().method(IdV).Def->codeEquals(
            *Pipeline.registry().method(IdP).Def))
            << M.key();
      }
      EXPECT_EQ(CodeVersionManager::of(Versioned).installs(),
                Spec.MethodBodyUpdates.size());
    }
  }
  EXPECT_EQ(Total, 22);
  // The paper reports 9 method-body-only supported updates; our table
  // reconstruction yields 8 (see EXPERIMENTS.md). 6 of those are
  // *strictly* body-only bundles the manager commits directly — the
  // other two (jetty 5.1.1, email 1.3.3) carry class updates whose
  // method-body subset EcUpdater certifies but whose full bundle
  // rightly takes the safe-point pipeline.
  EXPECT_EQ(EcOk, 8);
  EXPECT_EQ(BodyOnly, 6);
}
