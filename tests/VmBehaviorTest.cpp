//===----------------------------------------------------------------------===//
///
/// \file
/// VM facade behaviors: callStatic semantics, run budgets, string
/// interning, and the "multiple stack frames on the same stack" OSR case
/// the paper's §3.2 extension of Jikes RVM's OSR machinery enables.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "dsu/Updater.h"
#include "dsu/Upt.h"

#include <gtest/gtest.h>

using namespace jvolve;
using namespace jvolve::test;

TEST(VmBehavior, CallStaticVoidReturnsZeroSlot) {
  ClassSet Set;
  ClassBuilder CB("M");
  CB.staticMethod("noop", "()V").ret();
  Set.add(CB.build());
  VM TheVM(smallConfig());
  TheVM.loadProgram(Set);
  Slot S = TheVM.callStatic("M", "noop", "()V");
  EXPECT_EQ(S.IntVal, 0);
  EXPECT_FALSE(S.IsRef);
}

TEST(VmBehavior, CallStaticReturnsRefs) {
  ClassSet Set;
  ClassBuilder CB("M");
  CB.staticMethod("hello", "()LString;").sconst("hi").aret();
  Set.add(CB.build());
  VM TheVM(smallConfig());
  TheVM.loadProgram(Set);
  Slot S = TheVM.callStatic("M", "hello", "()LString;");
  ASSERT_TRUE(S.IsRef);
  EXPECT_EQ(TheVM.stringValue(S.RefVal), "hi");
}

TEST(VmBehavior, RunToCompletionStopsWhenAppThreadsFinish) {
  ClassSet Set;
  ClassBuilder CB("M");
  CB.staticMethod("work", "()V")
      .iconst(500)
      .intrinsic(IntrinsicId::SleepTicks)
      .ret();
  Set.add(CB.build());
  VM TheVM(smallConfig());
  TheVM.loadProgram(Set);
  ThreadId Id = TheVM.spawnThread("M", "work", "()V", {}, "app", false);
  TheVM.runToCompletion();
  EXPECT_EQ(TheVM.scheduler().findThread(Id)->State, ThreadState::Finished);
  EXPECT_FALSE(TheVM.scheduler().hasLiveApplicationThreads());
}

TEST(VmBehavior, StringLiteralsInterned) {
  ClassSet Set;
  ClassBuilder CB("M");
  CB.staticMethod("a", "()LString;").sconst("shared literal").aret();
  CB.staticMethod("b", "()LString;").sconst("shared literal").aret();
  Set.add(CB.build());
  VM TheVM(smallConfig());
  TheVM.loadProgram(Set);
  size_t Before = TheVM.strings().size();
  Ref A = TheVM.callStatic("M", "a", "()LString;").RefVal;
  (void)A;
  TheVM.callStatic("M", "b", "()LString;");
  // Both literals share one table entry (interned at compile time).
  EXPECT_EQ(TheVM.strings().size(), Before + 1);
}

TEST(VmBehavior, MultipleFramesOnOneStackAllOsr) {
  // run() -> helper(), both category (2) (reading Data fields), parked
  // inside helper(): both frames must be on-stack replaced — the paper's
  // extension of Jikes RVM OSR to "multiple stack frames on the same
  // stack".
  auto Version = [](bool Extra) {
    ClassSet Set;
    ClassBuilder D("Data");
    D.field("a", "I");
    if (Extra)
      D.field("b", "I");
    Set.add(D.build());
    ClassBuilder St("Store");
    St.staticField("data", "LData;");
    St.staticField("sum", "I");
    St.staticMethod("init", "()V")
        .locals(1)
        .newobj("Data")
        .store(0)
        .load(0)
        .iconst(4)
        .putfield("Data", "a", "I")
        .load(0)
        .putstatic("Store", "data", "LData;")
        .ret();
    Set.add(St.build());
    ClassBuilder W("Worker");
    // helper: reads Data.a, then sleeps (parks *inside* helper).
    W.staticMethod("helper", "()I")
        .getstatic("Store", "data", "LData;")
        .getfield("Data", "a", "I")
        .iconst(30)
        .intrinsic(IntrinsicId::SleepTicks)
        .iret();
    // run: loops calling helper; also reads Data itself.
    W.staticMethod("run", "()V")
        .label("top")
        .getstatic("Store", "sum", "I")
        .invokestatic("Worker", "helper", "()I")
        .iadd()
        .getstatic("Store", "data", "LData;")
        .getfield("Data", "a", "I")
        .iadd()
        .putstatic("Store", "sum", "I")
        .jump("top");
    Set.add(W.build());
    return Set;
  };

  VM TheVM(smallConfig());
  TheVM.loadProgram(Version(false));
  TheVM.callStatic("Store", "init", "()V");
  TheVM.spawnThread("Worker", "run", "()V", {}, "worker", true);
  // Park the thread while it sleeps inside helper().
  TheVM.run(40);
  VMThread *T = TheVM.scheduler().threads().front().get();
  for (auto &Thread : TheVM.scheduler().threads())
    if (Thread->Name == "worker")
      T = Thread.get();
  ASSERT_EQ(T->Frames.size(), 2u); // run + helper

  Updater U(TheVM);
  UpdateResult R = U.applyNow(Upt::prepare(Version(false), Version(true),
                                           "v1"));
  ASSERT_EQ(R.Status, UpdateStatus::Applied) << R.Message;
  EXPECT_EQ(R.OsrReplacements, 2);

  // The thread keeps accumulating correctly with the new offsets.
  int64_t Before = TheVM.registry()
                       .cls(TheVM.registry().idOf("Store"))
                       .Statics[1]
                       .IntVal;
  TheVM.run(1'000);
  int64_t After = TheVM.registry()
                      .cls(TheVM.registry().idOf("Store"))
                      .Statics[1]
                      .IntVal;
  EXPECT_GT(After, Before);
  EXPECT_EQ((After - Before) % 8, 0); // each iteration adds 4 + 4
}

TEST(VmBehavior, UpdateWhileThreadBlockedInAccept) {
  if (codeVersionModeForced())
    GTEST_SKIP() << "body-only bundle commits through the version chains under "
                    "JVOLVE_CODEVERSION=1 -- no safe-point protocol to assert";
  // Blocked threads are at safe points by construction; an update applies
  // without waking them, and they resume against the new world.
  auto Version = [](int64_t Bonus) {
    ClassSet Set;
    ClassBuilder S("Srv");
    S.staticMethod("serve", "(I)V")
        .locals(3)
        .label("top")
        .load(0)
        .intrinsic(IntrinsicId::NetAccept)
        .store(1)
        .load(1)
        .intrinsic(IntrinsicId::NetRecv)
        .store(2)
        .load(2)
        .iconst(0)
        .branch(Opcode::IfICmpLt, "top")
        .load(1)
        .load(2)
        .iconst(Bonus)
        .iadd()
        .intrinsic(IntrinsicId::NetSend)
        .jump("top");
    Set.add(S.build());
    return Set;
  };

  VM TheVM(smallConfig());
  TheVM.loadProgram(Version(1));
  TheVM.spawnThread("Srv", "serve", "(I)V", {Slot::ofInt(7)}, "srv", true);
  TheVM.run(1'000); // blocks in accept

  // serve() itself changes, but the thread is parked at the accept
  // intrinsic... which keeps serve() on stack: restricted. Use an active
  // mapping (the bodies differ only in one constant, so identity works).
  UpdateBundle B = Upt::prepare(Version(1), Version(1000), "v1");
  B.addActiveMapping(ActiveMethodMapping::identity(
      {"Srv", "serve", "(I)V"},
      Version(1000).find("Srv")->findMethod("serve")->Code.size()));
  Updater U(TheVM);
  UpdateResult R = U.applyNow(std::move(B));
  ASSERT_EQ(R.Status, UpdateStatus::Applied) << R.Message;
  EXPECT_EQ(R.ActiveFramesRemapped, 1);

  TheVM.injectConnection(7, {5});
  TheVM.run(10'000);
  std::vector<NetResponse> Rs = TheVM.net().drainResponses();
  ASSERT_EQ(Rs.size(), 1u);
  EXPECT_EQ(Rs[0].Value, 1005);
}

TEST(VmBehavior, TickBudgetRespected) {
  ClassSet Set;
  ClassBuilder CB("Spin");
  CB.staticMethod("run", "()V").label("t").jump("t");
  Set.add(CB.build());
  VM TheVM(smallConfig());
  TheVM.loadProgram(Set);
  TheVM.spawnThread("Spin", "run", "()V", {}, "s", true);
  VM::RunResult R = TheVM.run(12'345);
  EXPECT_EQ(R.TicksExecuted, 12'345u);
  EXPECT_FALSE(R.Idle);
}

TEST(VmBehavior, InstructionsCounted) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(intProgram([](MethodBuilder &M) {
    M.iconst(1).iconst(2).iadd().iret();
  }));
  uint64_t Before = TheVM.stats().InstructionsExecuted;
  TheVM.callStatic("Main", "run", "()I");
  EXPECT_EQ(TheVM.stats().InstructionsExecuted - Before, 4u);
}
