//===----------------------------------------------------------------------===//
///
/// \file
/// Thread-scheduler and simulated-network tests: round-robin fairness,
/// yield-point parking, sleep/wake via the virtual clock, blocking accept/
/// receive, daemon accounting, and request-latency bookkeeping.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "bytecode/Builder.h"
#include "dsu/Updater.h"
#include "dsu/Upt.h"
#include "vm/Network.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

using namespace jvolve;
using namespace jvolve::test;

namespace {

/// Two counter threads that loop forever, each bumping its own static.
ClassSet twoCounterProgram() {
  ClassSet Set;
  ClassBuilder CB("Counters");
  CB.staticField("a", "I");
  CB.staticField("b", "I");
  CB.staticMethod("runA", "()V")
      .label("top")
      .getstatic("Counters", "a", "I")
      .iconst(1)
      .iadd()
      .putstatic("Counters", "a", "I")
      .jump("top");
  CB.staticMethod("runB", "()V")
      .label("top")
      .getstatic("Counters", "b", "I")
      .iconst(1)
      .iadd()
      .putstatic("Counters", "b", "I")
      .jump("top");
  Set.add(CB.build());
  return Set;
}

int64_t staticOf(VM &TheVM, const char *Cls, int Slot) {
  return TheVM.registry()
      .cls(TheVM.registry().idOf(Cls))
      .Statics[static_cast<size_t>(Slot)]
      .IntVal;
}

} // namespace

TEST(Scheduler, RoundRobinIsFair) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(twoCounterProgram());
  TheVM.spawnThread("Counters", "runA", "()V", {}, "a", true);
  TheVM.spawnThread("Counters", "runB", "()V", {}, "b", true);
  TheVM.run(20'000);
  int64_t A = staticOf(TheVM, "Counters", 0);
  int64_t B = staticOf(TheVM, "Counters", 1);
  EXPECT_GT(A, 0);
  EXPECT_GT(B, 0);
  // Within 10% of each other.
  EXPECT_LT(std::abs(A - B), std::max(A, B) / 10 + 2);
}

TEST(Scheduler, VirtualClockAdvancesWithInstructions) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(twoCounterProgram());
  TheVM.spawnThread("Counters", "runA", "()V", {}, "a", true);
  uint64_t Before = TheVM.scheduler().ticks();
  VM::RunResult R = TheVM.run(5'000);
  EXPECT_EQ(R.TicksExecuted, TheVM.scheduler().ticks() - Before);
  EXPECT_EQ(R.TicksExecuted, 5'000u);
}

TEST(Scheduler, SleepFastForwardsWhenIdle) {
  ClassSet Set;
  ClassBuilder CB("Sleepy");
  CB.staticField("wake", "I");
  CB.staticMethod("run", "()V")
      .iconst(100'000)
      .intrinsic(IntrinsicId::SleepTicks)
      .intrinsic(IntrinsicId::CurrentTicks)
      .putstatic("Sleepy", "wake", "I")
      .ret();
  Set.add(CB.build());
  VM TheVM(smallConfig());
  TheVM.loadProgram(Set);
  TheVM.spawnThread("Sleepy", "run", "()V");
  // The sleep is longer than the instructions executed: the clock jumps.
  TheVM.runToCompletion(1'000'000);
  EXPECT_GE(staticOf(TheVM, "Sleepy", 0), 100'000);
  EXPECT_LT(staticOf(TheVM, "Sleepy", 0), 110'000);
}

TEST(Scheduler, RunGoesIdleWithNothingToDo) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(twoCounterProgram());
  VM::RunResult R = TheVM.run(1'000);
  EXPECT_TRUE(R.Idle);
}

TEST(Scheduler, YieldParksAllThreads) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(twoCounterProgram());
  TheVM.spawnThread("Counters", "runA", "()V", {}, "a", true);
  TheVM.spawnThread("Counters", "runB", "()V", {}, "b", true);
  TheVM.run(500);

  bool Reached = false;
  TheVM.setSafePointCallback([&] {
    Reached = true;
    EXPECT_TRUE(TheVM.scheduler().allAtSafePoints());
    TheVM.resumeAfterYield();
    TheVM.setSafePointCallback(nullptr);
  });
  TheVM.requestYield();
  TheVM.run(5'000);
  EXPECT_TRUE(Reached);
  // Threads resumed and keep making progress.
  int64_t A = staticOf(TheVM, "Counters", 0);
  TheVM.run(2'000);
  EXPECT_GT(staticOf(TheVM, "Counters", 0), A);
}

TEST(Scheduler, DaemonThreadsDoNotKeepVmAlive) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(twoCounterProgram());
  TheVM.spawnThread("Counters", "runA", "()V", {}, "daemon", true);
  EXPECT_FALSE(TheVM.scheduler().hasLiveApplicationThreads());
  TheVM.spawnThread("Counters", "runB", "()V", {}, "app", false);
  EXPECT_TRUE(TheVM.scheduler().hasLiveApplicationThreads());
}

TEST(Network, InjectAcceptRecvSendRoundTrip) {
  Network Net;
  int Conn = Net.inject(80, {7, 8}, /*Now=*/0);
  EXPECT_TRUE(Net.hasPendingAccept(80));
  EXPECT_EQ(Net.tryAccept(80), Conn);
  EXPECT_EQ(Net.tryAccept(80), -1);

  int64_t V = 0;
  uint64_t Ready = 0;
  EXPECT_EQ(Net.recv(Conn, 0, V, Ready), Network::RecvStatus::Value);
  EXPECT_EQ(V, 7);
  Net.send(Conn, 70, 5);
  EXPECT_EQ(Net.recv(Conn, 10, V, Ready), Network::RecvStatus::Value);
  EXPECT_EQ(V, 8);
  EXPECT_EQ(Net.recv(Conn, 10, V, Ready), Network::RecvStatus::Eof);

  std::vector<NetResponse> Rs = Net.drainResponses();
  ASSERT_EQ(Rs.size(), 1u);
  EXPECT_EQ(Rs[0].Value, 70);
  EXPECT_EQ(Rs[0].Tick, 5u);
}

TEST(Network, InterArrivalDelaysRequests) {
  Network Net;
  int Conn = Net.inject(80, {1, 2}, /*Now=*/100, /*InterArrival=*/50);
  int64_t V = 0;
  uint64_t Ready = 0;
  EXPECT_EQ(Net.recv(Conn, 100, V, Ready), Network::RecvStatus::Value);
  // Second request arrives at tick 150.
  EXPECT_EQ(Net.recv(Conn, 120, V, Ready), Network::RecvStatus::NotReady);
  EXPECT_EQ(Ready, 150u);
  EXPECT_EQ(Net.recv(Conn, 150, V, Ready), Network::RecvStatus::Value);
}

TEST(Network, LatencyMeasuredAgainstArrival) {
  Network Net;
  int Conn = Net.inject(80, {1}, /*Now=*/100, 0, /*FirstDelay=*/20);
  int64_t V = 0;
  uint64_t Ready = 0;
  ASSERT_EQ(Net.recv(Conn, 200, V, Ready), Network::RecvStatus::Value);
  Net.send(Conn, 2, 230); // arrived at 120, answered at 230
  std::vector<double> L = Net.drainLatencies();
  ASSERT_EQ(L.size(), 1u);
  EXPECT_DOUBLE_EQ(L[0], 110);
}

TEST(Network, CloseMakesRecvEof) {
  Network Net;
  int Conn = Net.inject(80, {1, 2, 3}, 0);
  Net.close(Conn);
  EXPECT_TRUE(Net.isClosed(Conn));
  int64_t V = 0;
  uint64_t Ready = 0;
  EXPECT_EQ(Net.recv(Conn, 0, V, Ready), Network::RecvStatus::Eof);
}

TEST(Network, BlockedAcceptWakesOnInjection) {
  ClassSet Set;
  ClassBuilder CB("Srv");
  CB.staticField("got", "I");
  CB.staticMethod("run", "(I)V")
      .load(0)
      .intrinsic(IntrinsicId::NetAccept)
      .putstatic("Srv", "got", "I")
      .ret();
  Set.add(CB.build());
  VM TheVM(smallConfig());
  TheVM.loadProgram(Set);
  ThreadId Id = TheVM.spawnThread("Srv", "run", "(I)V", {Slot::ofInt(9)});
  VM::RunResult R = TheVM.run(1'000);
  EXPECT_TRUE(R.Idle);
  EXPECT_EQ(TheVM.scheduler().findThread(Id)->State,
            ThreadState::BlockedAccept);

  int Conn = TheVM.injectConnection(9, {1});
  TheVM.runToCompletion(10'000);
  EXPECT_EQ(TheVM.scheduler().findThread(Id)->State, ThreadState::Finished);
  EXPECT_EQ(staticOf(TheVM, "Srv", 0), Conn);
}

TEST(Network, BlockedRecvWakesAtArrivalTick) {
  ClassSet Set;
  ClassBuilder CB("Srv");
  CB.staticField("sum", "I");
  CB.staticMethod("run", "(I)V")
      .locals(3)
      .load(0)
      .intrinsic(IntrinsicId::NetAccept)
      .store(1)
      .label("loop")
      .load(1)
      .intrinsic(IntrinsicId::NetRecv)
      .store(2)
      .load(2)
      .iconst(0)
      .branch(Opcode::IfICmpLt, "done")
      .getstatic("Srv", "sum", "I")
      .load(2)
      .iadd()
      .putstatic("Srv", "sum", "I")
      .jump("loop")
      .label("done")
      .ret();
  Set.add(CB.build());
  VM TheVM(smallConfig());
  TheVM.loadProgram(Set);
  TheVM.spawnThread("Srv", "run", "(I)V", {Slot::ofInt(9)});
  TheVM.injectConnection(9, {10, 20, 30}, /*InterArrival=*/5'000);
  TheVM.runToCompletion(1'000'000);
  EXPECT_EQ(staticOf(TheVM, "Srv", 0), 60);
  // Virtual time covered the arrival schedule via fast-forwarding.
  EXPECT_GE(TheVM.scheduler().ticks(), 10'000u);
}

TEST(Network, AdmissionControlShedsPastDepth) {
  Network Net;
  Net.setAdmissionLimit(80, 1);
  EXPECT_EQ(Net.admissionLimit(80), 1u);

  int C1 = Net.inject(80, {1}, /*Now=*/0);
  int C2 = Net.inject(80, {5, 6}, /*Now=*/0);
  // C1 filled the backlog; C2 was shed: closed, every request refused.
  EXPECT_FALSE(Net.isClosed(C1));
  EXPECT_TRUE(Net.isClosed(C2));
  EXPECT_EQ(Net.shedTotal(), 2u);

  std::vector<NetResponse> Rs = Net.drainResponses();
  ASSERT_EQ(Rs.size(), 2u);
  for (const NetResponse &R : Rs) {
    EXPECT_EQ(R.Conn, C2);
    EXPECT_EQ(R.Value, Network::RejectedResponse);
  }

  // The admitted connection is still there to accept.
  EXPECT_EQ(Net.tryAccept(80), C1);
  EXPECT_EQ(Net.tryAccept(80), -1);

  // Limit 0 means unlimited again.
  Net.setAdmissionLimit(80, 0);
  int C3 = Net.inject(80, {9}, /*Now=*/0);
  EXPECT_FALSE(Net.isClosed(C3));
  EXPECT_EQ(Net.shedTotal(), 2u);
}

TEST(Network, DrainGatesAcceptsUntilEnded) {
  Network Net;
  int Conn = Net.inject(80, {1}, /*Now=*/0);
  Net.beginDrain();
  EXPECT_TRUE(Net.draining());
  // The queued connection is invisible while draining, but not dropped.
  EXPECT_FALSE(Net.hasPendingAccept(80));
  EXPECT_EQ(Net.tryAccept(80), -1);
  Net.endDrain();
  EXPECT_TRUE(Net.hasPendingAccept(80));
  EXPECT_EQ(Net.tryAccept(80), Conn);
}

TEST(Network, TryAcceptDoesNotBlock) {
  ClassSet Set;
  ClassBuilder CB("Srv");
  CB.staticMethod("poll", "(I)I")
      .load(0)
      .intrinsic(IntrinsicId::NetTryAccept)
      .iret();
  Set.add(CB.build());
  VM TheVM(smallConfig());
  TheVM.loadProgram(Set);
  EXPECT_EQ(
      TheVM.callStatic("Srv", "poll", "(I)I", {Slot::ofInt(5)}).IntVal, -1);
  int Conn = TheVM.injectConnection(5, {1});
  EXPECT_EQ(
      TheVM.callStatic("Srv", "poll", "(I)I", {Slot::ofInt(5)}).IntVal,
      Conn);
}

namespace {

/// Echo.run(I)V: accept one connection, answer each request with
/// request + K, close on EOF. K is the version-visible constant.
ClassSet echoProgram(int64_t K) {
  ClassSet Set;
  ClassBuilder CB("Echo");
  CB.staticMethod("run", "(I)V")
      .locals(3)
      .load(0)
      .intrinsic(IntrinsicId::NetAccept)
      .store(1)
      .label("loop")
      .load(1)
      .intrinsic(IntrinsicId::NetRecv)
      .store(2)
      .load(2)
      .iconst(0)
      .branch(Opcode::IfICmpLt, "done")
      .load(1)
      .load(2)
      .iconst(K)
      .iadd()
      .intrinsic(IntrinsicId::NetSend)
      .jump("loop")
      .label("done")
      .load(1)
      .intrinsic(IntrinsicId::NetClose)
      .ret();
  Set.add(CB.build());
  return Set;
}

} // namespace

TEST(Scheduler, BlockedRecvThreadRescuedMidUpdate) {
  if (codeVersionModeForced())
    GTEST_SKIP() << "body-only bundle commits through the version chains under "
                    "JVOLVE_CODEVERSION=1 -- no safe-point protocol to assert";
  VM TheVM(smallConfig());
  TheVM.loadProgram(echoProgram(7));
  TheVM.spawnThread("Echo", "run", "(I)V", {Slot::ofInt(9)}, "echo");
  // Two requests far apart: the thread answers the first, then blocks in
  // recv until the distant second arrival.
  TheVM.injectConnection(9, {10, 20}, /*InterArrival=*/200'000);
  TheVM.run(5'000);
  std::vector<NetResponse> First = TheVM.net().drainResponses();
  ASSERT_EQ(First.size(), 1u);
  EXPECT_EQ(First[0].Value, 17);

  // run(I)V changes body (same instruction count), so the blocked-recv
  // frame pins the update until the rescue rung remaps it in place.
  Updater U(TheVM);
  UpdateOptions Opts;
  Opts.TimeoutTicks = 10'000;
  Opts.EnableRescue = true;
  UpdateResult R =
      U.applyNow(Upt::prepare(echoProgram(7), echoProgram(9), "v2"), Opts);
  ASSERT_EQ(R.Status, UpdateStatus::Applied) << R.Message;
  EXPECT_EQ(R.ResolvedRung, QuiescenceRung::Rescue);
  EXPECT_GE(R.RescuedFrames, 1);

  // The still-blocked thread wakes at the second arrival and serves it
  // with the NEW body: 20 + 9, not 20 + 7. No in-flight response is lost.
  TheVM.runToCompletion(500'000);
  std::vector<NetResponse> Second = TheVM.net().drainResponses();
  ASSERT_EQ(Second.size(), 1u);
  EXPECT_EQ(Second[0].Value, 29);
  EXPECT_EQ(TheVM.net().totalResponses(), 2u);
}
