//===----------------------------------------------------------------------===//
///
/// \file
/// DSU edge cases beyond the core scenarios: garbage collection after an
/// update reclaims the duplicate old copies, obsolete statics are dropped,
/// updates with pinned host roots, deep object graphs, method-deletion
/// restriction, update-in-flight exclusivity, and semantic equivalence of
/// the indirection execution mode.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "dsu/Transformers.h"
#include "dsu/Updater.h"
#include "dsu/Upt.h"
#include "runtime/ObjectModel.h"

#include <gtest/gtest.h>

using namespace jvolve;
using namespace jvolve::test;

namespace {

ClassSet chainVersion(bool Extra) {
  ClassSet Set;
  ClassBuilder N("Link");
  N.field("v", "I");
  N.field("next", "LLink;");
  if (Extra)
    N.field("extra", "I");
  Set.add(N.build());
  ClassBuilder H("H");
  H.staticField("head", "LLink;");
  Set.add(H.build());
  return Set;
}

/// Builds a chain of \p N Link objects rooted in H.head.
void buildChain(VM &TheVM, int N) {
  ClassRegistry &Reg = TheVM.registry();
  ClassId LinkId = Reg.idOf("Link");
  TransformCtx Ctx(TheVM, nullptr);
  Ref Head = nullptr;
  for (int I = 0; I < N; ++I) {
    Ref Obj = TheVM.allocateObject(LinkId);
    Ctx.setInt(Obj, "v", I);
    Ctx.setRef(Obj, "next", Head);
    Head = Obj;
    // Allocation may move earlier nodes only at a GC; protect via static.
    Reg.cls(Reg.idOf("H")).Statics[0] = Slot::ofRef(Head);
  }
}

int64_t chainSum(VM &TheVM) {
  ClassRegistry &Reg = TheVM.registry();
  TransformCtx Ctx(TheVM, nullptr);
  Ref Cur = Reg.cls(Reg.idOf("H")).Statics[0].RefVal;
  int64_t Sum = 0;
  while (Cur) {
    Sum += Ctx.getInt(Cur, "v");
    Cur = Ctx.getRef(Cur, "next");
  }
  return Sum;
}

} // namespace

TEST(DsuEdge, DeepGraphFullyTransformed) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(chainVersion(false));
  buildChain(TheVM, 500);
  ASSERT_EQ(chainSum(TheVM), 499 * 500 / 2);

  Updater U(TheVM);
  UpdateResult R =
      U.applyNow(Upt::prepare(chainVersion(false), chainVersion(true), "v1"));
  ASSERT_EQ(R.Status, UpdateStatus::Applied) << R.Message;
  EXPECT_EQ(R.ObjectsTransformed, 500u);
  EXPECT_EQ(chainSum(TheVM), 499 * 500 / 2);
}

TEST(DsuEdge, OldCopiesReclaimedByNextCollection) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(chainVersion(false));
  buildChain(TheVM, 100);

  Updater U(TheVM);
  UpdateResult R =
      U.applyNow(Upt::prepare(chainVersion(false), chainVersion(true), "v1"));
  ASSERT_EQ(R.Status, UpdateStatus::Applied);

  // Right after the update, both new versions and old duplicates occupy
  // the heap; the next collection reclaims the duplicates.
  size_t AfterUpdate = TheVM.heap().bytesAllocated();
  CollectionStats St = TheVM.collectGarbage();
  EXPECT_LT(TheVM.heap().bytesAllocated(), AfterUpdate);
  // Live: 100 new Links (Link has 3 fields + header = 40B) vs the update
  // kept 100 old copies (32B) around too.
  EXPECT_EQ(St.ObjectsRemapped, 0u);
  EXPECT_EQ(chainSum(TheVM), 99 * 100 / 2);
}

TEST(DsuEdge, PinnedHostRootsSurviveUpdates) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(chainVersion(false));
  ClassId LinkId = TheVM.registry().idOf("Link");
  Ref Obj = TheVM.allocateObject(LinkId);
  {
    TransformCtx Ctx(TheVM, nullptr);
    Ctx.setInt(Obj, "v", 77);
  }
  TheVM.pinnedRoots().push_back(Obj);

  Updater U(TheVM);
  ASSERT_EQ(U.applyNow(Upt::prepare(chainVersion(false), chainVersion(true),
                                    "v1"))
                .Status,
            UpdateStatus::Applied);

  Ref Moved = TheVM.pinnedRoots().back();
  ASSERT_NE(Moved, nullptr);
  // The pinned object was transformed to the new class.
  EXPECT_EQ(classOf(Moved), TheVM.registry().idOf("Link"));
  TransformCtx Ctx(TheVM, nullptr);
  EXPECT_EQ(Ctx.getInt(Moved, "v"), 77);
  EXPECT_EQ(Ctx.getInt(Moved, "extra"), 0);
  TheVM.pinnedRoots().clear();
}

TEST(DsuEdge, ObsoleteStaticsDroppedAfterUpdate) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(chainVersion(false));
  buildChain(TheVM, 10);
  ClassId OldH = TheVM.registry().idOf("H");

  // Update changes H itself (class update with a static): the old H's
  // statics must not keep objects alive afterwards.
  ClassSet V2 = chainVersion(true);
  V2.find("H")->Fields.push_back({"pad", "I", false, false,
                                  Access::Public});
  Updater U(TheVM);
  ASSERT_EQ(U.applyNow(Upt::prepare(chainVersion(false), V2, "v1")).Status,
            UpdateStatus::Applied);

  RtClass &Old = TheVM.registry().cls(OldH);
  EXPECT_TRUE(Old.Obsolete);
  for (const Slot &S : Old.Statics)
    if (S.IsRef)
      EXPECT_EQ(S.RefVal, nullptr);
  // The new H carried the head over (default class transformer).
  EXPECT_EQ(chainSum(TheVM), 45);
}

TEST(DsuEdge, ProgramAccessorReflectsCurrentVersion) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(chainVersion(false));
  EXPECT_EQ(TheVM.program().find("Link")->Fields.size(), 2u);
  Updater U(TheVM);
  ASSERT_EQ(U.applyNow(Upt::prepare(chainVersion(false), chainVersion(true),
                                    "v1"))
                .Status,
            UpdateStatus::Applied);
  EXPECT_EQ(TheVM.program().find("Link")->Fields.size(), 3u);
  // The recorded program is the basis of the *next* UPT diff.
  UpdateSpec S = Upt::computeSpec(TheVM.program(), chainVersion(true));
  EXPECT_TRUE(S.empty());
}

TEST(DsuEdge, SchedulingSecondUpdateWhilePendingAborts) {
  if (codeVersionModeForced())
    GTEST_SKIP() << "body-only bundle commits through the version chains under "
                    "JVOLVE_CODEVERSION=1 -- no safe-point protocol to assert";
  VM TheVM(smallConfig());
  TheVM.loadProgram(chainVersion(false));
  // A spinning thread keeps the first update pending.
  ClassSet WithLoop = chainVersion(false);
  {
    ClassBuilder CB("Spin");
    CB.staticMethod("run", "()V")
        .label("top")
        .iconst(50)
        .intrinsic(IntrinsicId::SleepTicks)
        .jump("top");
    WithLoop.add(CB.build());
  }
  // Reload on a fresh VM with the loop class present.
  VM TheVM2(smallConfig());
  TheVM2.loadProgram(WithLoop);
  TheVM2.spawnThread("Spin", "run", "()V", {}, "spin", true);
  TheVM2.run(20);

  ClassSet Next = WithLoop;
  Next.find("Spin")->findMethod("run", "()V")->Code.push_back(
      {Opcode::Nop, 0, "", "", ""});
  Updater U(TheVM2);
  UpdateOptions Opts;
  Opts.TimeoutTicks = 1'000'000;
  U.schedule(Upt::prepare(WithLoop, Next, "v1"), Opts);
  EXPECT_TRUE(U.pending());
  EXPECT_DEATH(U.schedule(Upt::prepare(WithLoop, Next, "v2"), Opts),
               "already pending");
}

TEST(DsuEdge, MethodDeletionRestrictsOnStackFrames) {
  // A thread inside a method that the update deletes (its class shrinks):
  // the frame is restricted; since the loop never returns, timeout.
  ClassSet V1;
  {
    ClassBuilder CB("W");
    CB.field("pad", "I");
    MethodBuilder &Run = CB.staticMethod("spinOld", "()V");
    Run.label("top")
        .iconst(30)
        .intrinsic(IntrinsicId::SleepTicks)
        .jump("top");
    CB.staticMethod("other", "()I").iconst(0).iret();
    V1.add(CB.build());
  }
  ClassSet V2;
  {
    ClassBuilder CB("W");
    CB.field("pad", "I");
    CB.field("pad2", "I"); // class update
    CB.staticMethod("other", "()I").iconst(0).iret(); // spinOld deleted
    V2.add(CB.build());
  }
  VM TheVM(smallConfig());
  TheVM.loadProgram(V1);
  TheVM.spawnThread("W", "spinOld", "()V", {}, "w", true);
  TheVM.run(50);

  Updater U(TheVM);
  UpdateOptions Opts;
  Opts.TimeoutTicks = 20'000;
  UpdateResult R = U.applyNow(Upt::prepare(V1, V2, "v1"), Opts);
  EXPECT_EQ(R.Status, UpdateStatus::TimedOut);
}

TEST(DsuEdge, IndirectionModeComputesIdenticalResults) {
  // The ablation mode must be semantically transparent.
  for (bool Indirection : {false, true}) {
    VM::Config C = smallConfig();
    C.IndirectionMode = Indirection;
    VM TheVM(C);
    TheVM.loadProgram(chainVersion(false));
    buildChain(TheVM, 50);
    EXPECT_EQ(chainSum(TheVM), 49 * 50 / 2);
    Updater U(TheVM);
    ASSERT_EQ(
        U.applyNow(Upt::prepare(chainVersion(false), chainVersion(true),
                                "v1"))
            .Status,
        UpdateStatus::Applied);
    EXPECT_EQ(chainSum(TheVM), 49 * 50 / 2);
  }
}

TEST(DsuEdge, UpdateDuringHeavyAllocationPressure) {
  // The DSU collection itself must cope with a heap that is mostly full
  // of garbage when the update is requested.
  VM::Config C = smallConfig();
  C.HeapSpaceBytes = 1u << 20;
  VM TheVM(C);
  TheVM.loadProgram(chainVersion(false));
  buildChain(TheVM, 200);
  // Garbage churn.
  ClassId LinkId = TheVM.registry().idOf("Link");
  for (int I = 0; I < 20'000; ++I)
    ASSERT_NE(TheVM.allocateObject(LinkId), nullptr);

  Updater U(TheVM);
  UpdateResult R =
      U.applyNow(Upt::prepare(chainVersion(false), chainVersion(true), "v1"));
  ASSERT_EQ(R.Status, UpdateStatus::Applied) << R.Message;
  EXPECT_EQ(R.ObjectsTransformed, 200u);
  EXPECT_EQ(chainSum(TheVM), 199 * 200 / 2);
}

TEST(DsuEdge, RepeatedUpdatesToSameClassKeepDistinctOldVersions) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(chainVersion(false));
  buildChain(TheVM, 5);

  ClassSet V2 = chainVersion(true);
  ClassSet V3 = chainVersion(true);
  V3.find("Link")->Fields.push_back({"third", "I", false, false,
                                     Access::Public});

  Updater U(TheVM);
  ASSERT_EQ(U.applyNow(Upt::prepare(chainVersion(false), V2, "v1")).Status,
            UpdateStatus::Applied);
  ASSERT_EQ(U.applyNow(Upt::prepare(V2, V3, "v2")).Status,
            UpdateStatus::Applied);

  ClassRegistry &Reg = TheVM.registry();
  EXPECT_NE(Reg.idOf("v1_Link"), InvalidClassId);
  EXPECT_NE(Reg.idOf("v2_Link"), InvalidClassId);
  EXPECT_NE(Reg.idOf("Link"), InvalidClassId);
  EXPECT_EQ(chainSum(TheVM), 10);
}

TEST(DsuEdge, UpdateWithOnlyAddedClassesSkipsCollection) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(chainVersion(false));
  uint64_t CollectionsBefore = TheVM.stats().Collections;

  ClassSet V2 = chainVersion(false);
  ClassBuilder Fresh("Fresh");
  Fresh.staticMethod("hi", "()I").iconst(1).iret();
  V2.add(Fresh.build());

  Updater U(TheVM);
  UpdateResult R = U.applyNow(Upt::prepare(chainVersion(false), V2, "v1"));
  ASSERT_EQ(R.Status, UpdateStatus::Applied);
  // No class updates -> no instances to find -> no whole-heap collection.
  EXPECT_EQ(TheVM.stats().Collections, CollectionsBefore);
  EXPECT_EQ(TheVM.callStatic("Fresh", "hi", "()I").IntVal, 1);
}
