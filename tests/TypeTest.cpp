//===----------------------------------------------------------------------===//
///
/// \file
/// Type-descriptor and method-signature parsing tests, including
/// parameterized sweeps over valid and malformed descriptors.
///
//===----------------------------------------------------------------------===//

#include "bytecode/Type.h"

#include <gtest/gtest.h>

using namespace jvolve;

TEST(Type, PrimitiveDescriptors) {
  EXPECT_TRUE(Type::parse("I").isInt());
  EXPECT_TRUE(Type::parse("V").isVoid());
  EXPECT_FALSE(Type::parse("I").isReferenceLike());
}

TEST(Type, ReferenceDescriptor) {
  Type T = Type::parse("LUser;");
  EXPECT_TRUE(T.isRef());
  EXPECT_TRUE(T.isReferenceLike());
  EXPECT_EQ(T.className(), "User");
  EXPECT_EQ(T.descriptor(), "LUser;");
}

TEST(Type, ArrayDescriptor) {
  Type T = Type::parse("[I");
  EXPECT_TRUE(T.isArray());
  EXPECT_TRUE(T.elementType().isInt());
}

TEST(Type, NestedArrayDescriptor) {
  Type T = Type::parse("[[LUser;");
  ASSERT_TRUE(T.isArray());
  Type Elem = T.elementType();
  ASSERT_TRUE(Elem.isArray());
  EXPECT_EQ(Elem.elementType().className(), "User");
}

TEST(Type, FactoryRoundTrip) {
  EXPECT_EQ(Type::refTy("Point").descriptor(), "LPoint;");
  EXPECT_EQ(Type::arrayOf(Type::intTy()).descriptor(), "[I");
  EXPECT_EQ(Type::arrayOf(Type::refTy("A")).descriptor(), "[LA;");
  EXPECT_EQ(Type::voidTy().descriptor(), "V");
}

TEST(Type, Equality) {
  EXPECT_EQ(Type::parse("LUser;"), Type::refTy("User"));
  EXPECT_NE(Type::parse("LUser;"), Type::refTy("Users"));
  EXPECT_NE(Type::parse("I"), Type::parse("[I"));
}

class ValidDescriptorTest : public ::testing::TestWithParam<const char *> {};

TEST_P(ValidDescriptorTest, IsValid) {
  EXPECT_TRUE(Type::isValidDescriptor(GetParam())) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sweep, ValidDescriptorTest,
                         ::testing::Values("I", "V", "LA;", "LUser;",
                                           "LConfigurationManager;", "[I",
                                           "[LA;", "[[I", "[[[LDeep;"));

class InvalidDescriptorTest : public ::testing::TestWithParam<const char *> {
};

TEST_P(InvalidDescriptorTest, IsInvalid) {
  EXPECT_FALSE(Type::isValidDescriptor(GetParam())) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sweep, InvalidDescriptorTest,
                         ::testing::Values("", "X", "L;", "LU", "II", "[V",
                                           "[", "LA;I", "I;", "[ LA;",
                                           "VV"));

TEST(MethodSignature, NoArgsVoid) {
  MethodSignature S = MethodSignature::parse("()V");
  EXPECT_TRUE(S.Params.empty());
  EXPECT_TRUE(S.Return.isVoid());
}

TEST(MethodSignature, MixedParams) {
  MethodSignature S = MethodSignature::parse("(ILUser;[I)LBox;");
  ASSERT_EQ(S.Params.size(), 3u);
  EXPECT_TRUE(S.Params[0].isInt());
  EXPECT_EQ(S.Params[1].className(), "User");
  EXPECT_TRUE(S.Params[2].isArray());
  EXPECT_EQ(S.Return.className(), "Box");
}

TEST(MethodSignature, RoundTrip) {
  const char *Sigs[] = {"()V", "(I)I", "(ILUser;)V", "([LA;[I)[LB;"};
  for (const char *Sig : Sigs)
    EXPECT_EQ(MethodSignature::parse(Sig).descriptor(), Sig);
}

class InvalidSignatureTest : public ::testing::TestWithParam<const char *> {
};

TEST_P(InvalidSignatureTest, IsInvalid) {
  EXPECT_FALSE(MethodSignature::isValidSignature(GetParam())) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sweep, InvalidSignatureTest,
                         ::testing::Values("", "()", "I", "(V)V", "(I",
                                           "(I)VV", "(I)", "I)V", "((I)V",
                                           "([V)I"));
