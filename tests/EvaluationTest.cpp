//===----------------------------------------------------------------------===//
///
/// \file
/// Evaluation-harness tests: the shared release evaluator used by the
/// Tables 2-4 benches produces the outcomes the paper reports, for one
/// representative release of each kind (plain apply, OSR apply, timeout,
/// idle-only apply).
///
//===----------------------------------------------------------------------===//

#include "apps/CrossFtpApp.h"
#include "apps/EmailApp.h"
#include "apps/Evaluation.h"
#include "apps/JettyApp.h"

#include <gtest/gtest.h>

using namespace jvolve;

TEST(Evaluation, JettyPlainApply) {
  AppModel App = makeJettyApp();
  ReleaseOutcome R = evaluateRelease(App, 1); // 5.1.0 -> 5.1.1
  EXPECT_EQ(R.Version, "5.1.1");
  EXPECT_EQ(R.Result.Status, UpdateStatus::Applied);
  EXPECT_TRUE(R.supported());
  EXPECT_TRUE(R.EcSupported); // body-only-ish row
  EXPECT_TRUE(summaryMatches(R.Summary, App.release(1).Target));
}

TEST(Evaluation, JettyImpossibleUpdateTimesOutEvenIdle) {
  AppModel App = makeJettyApp();
  ReleaseOutcome R = evaluateRelease(App, 3, /*TimeoutTicks=*/60'000);
  EXPECT_EQ(R.Version, "5.1.3");
  EXPECT_EQ(R.Result.Status, UpdateStatus::TimedOut);
  // The idle retry cannot help: the accept loop itself changed.
  EXPECT_FALSE(R.AppliedWhenIdle);
  EXPECT_FALSE(R.supported());
}

TEST(Evaluation, EmailOsrApply) {
  AppModel App = makeEmailApp();
  ReleaseOutcome R = evaluateRelease(App, 6); // 1.3.1 -> 1.3.2
  EXPECT_EQ(R.Version, "1.3.2");
  EXPECT_EQ(R.Result.Status, UpdateStatus::Applied);
  EXPECT_GE(R.Result.OsrReplacements, 2);
  EXPECT_GE(R.Result.ObjectsTransformed, 1u);
}

TEST(Evaluation, CrossFtpIdleOnlyApply) {
  AppModel App = makeCrossFtpApp();
  ReleaseOutcome R = evaluateRelease(App, 3, /*TimeoutTicks=*/60'000);
  EXPECT_EQ(R.Version, "1.08");
  EXPECT_EQ(R.Result.Status, UpdateStatus::TimedOut); // busy
  EXPECT_TRUE(R.AppliedWhenIdle);                     // idle retry
  EXPECT_TRUE(R.supported());
  EXPECT_FALSE(R.EcSupported);
}
