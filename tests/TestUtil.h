//===----------------------------------------------------------------------===//
///
/// \file
/// Shared helpers for the test suite: small program factories and VM
/// construction shortcuts.
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_TESTS_TESTUTIL_H
#define JVOLVE_TESTS_TESTUTIL_H

#include "bytecode/Builder.h"
#include "bytecode/Builtins.h"
#include "vm/VM.h"

namespace jvolve::test {

/// A VM with a small heap suitable for unit tests.
inline VM::Config smallConfig() {
  VM::Config C;
  C.HeapSpaceBytes = 4u << 20;
  return C;
}

/// Builds a one-class program whose static method Main.run()I executes the
/// instructions recorded by \p Fill.
template <typename FillFn> ClassSet intProgram(FillFn Fill) {
  ClassBuilder CB("Main");
  MethodBuilder &M = CB.staticMethod("run", "()I");
  Fill(M);
  ClassSet Set;
  Set.add(CB.build());
  return Set;
}

/// Runs Main.run()I of \p Program on a fresh VM and returns the result.
inline int64_t runIntMain(const ClassSet &Program) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(Program);
  return TheVM.callStatic("Main", "run", "()I").IntVal;
}

} // namespace jvolve::test

#endif // JVOLVE_TESTS_TESTUTIL_H
