//===----------------------------------------------------------------------===//
///
/// \file
/// Shared helpers for the test suite: small program factories and VM
/// construction shortcuts.
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_TESTS_TESTUTIL_H
#define JVOLVE_TESTS_TESTUTIL_H

#include "bytecode/Builder.h"
#include "bytecode/Builtins.h"
#include "vm/VM.h"

#include <cstdlib>

namespace jvolve::test {

/// True when JVOLVE_CODEVERSION=1 reroutes every strictly body-only
/// bundle through the per-method CodeVersionManager. Tests that assert
/// safe-point pipeline mechanics (barriers, OSR, quiescence, starvation,
/// pending updates) on body-only bundles skip themselves under it — the
/// fast path commits such bundles instantly, which is the feature.
inline bool codeVersionModeForced() {
  const char *V = std::getenv("JVOLVE_CODEVERSION");
  return V && *V && *V != '0';
}

/// A VM with a small heap suitable for unit tests.
inline VM::Config smallConfig() {
  VM::Config C;
  C.HeapSpaceBytes = 4u << 20;
  return C;
}

/// Builds a one-class program whose static method Main.run()I executes the
/// instructions recorded by \p Fill.
template <typename FillFn> ClassSet intProgram(FillFn Fill) {
  ClassBuilder CB("Main");
  MethodBuilder &M = CB.staticMethod("run", "()I");
  Fill(M);
  ClassSet Set;
  Set.add(CB.build());
  return Set;
}

/// Runs Main.run()I of \p Program on a fresh VM and returns the result.
inline int64_t runIntMain(const ClassSet &Program) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(Program);
  return TheVM.callStatic("Main", "run", "()I").IntVal;
}

} // namespace jvolve::test

#endif // JVOLVE_TESTS_TESTUTIL_H
