//===----------------------------------------------------------------------===//
///
/// \file
/// Quickening-compiler tests: the baseline tier's 1:1 translation (the
/// property OSR depends on), hard-coded offset resolution, referenced-class
/// tracking (what DSU invalidation keys on), opt-tier inlining with local
/// remapping and return rewriting, recursion refusal, and the adaptive
/// promotion policy.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "bytecode/Builder.h"
#include "exec/Compiler.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

using namespace jvolve;
using namespace jvolve::test;

namespace {

/// VM whose registry/compiler we can poke directly.
struct CompilerFixture {
  VM TheVM;
  CompilerFixture(const ClassSet &Set) : TheVM(smallConfig()) {
    TheVM.loadProgram(Set);
  }
  MethodId method(const std::string &Cls, const std::string &Name,
                  const std::string &Sig) {
    return TheVM.registry().resolveMethod(TheVM.registry().idOf(Cls), Name,
                                          Sig);
  }
};

ClassSet calleeSet() {
  ClassSet Set;
  ClassBuilder CB("Math");
  CB.staticMethod("twice", "(I)I").load(0).iconst(2).imul().iret();
  CB.staticMethod("quad", "(I)I")
      .load(0)
      .invokestatic("Math", "twice", "(I)I")
      .invokestatic("Math", "twice", "(I)I")
      .iret();
  CB.staticMethod("fact", "(I)I")
      .load(0)
      .iconst(2)
      .branch(Opcode::IfICmpGe, "rec")
      .iconst(1)
      .iret()
      .label("rec")
      .load(0)
      .load(0)
      .iconst(1)
      .isub()
      .invokestatic("Math", "fact", "(I)I")
      .imul()
      .iret();
  Set.add(CB.build());
  return Set;
}

} // namespace

TEST(Compiler, BaselineIsOneToOne) {
  CompilerFixture F(calleeSet());
  MethodId Quad = F.method("Math", "quad", "(I)I");
  auto Code = F.TheVM.compiler().compile(Quad, Tier::Baseline);
  const MethodDef &Def = *F.TheVM.registry().method(Quad).Def;
  ASSERT_EQ(Code->Code.size(), Def.Code.size());
  // Every resolved instruction maps back to its own bytecode index.
  for (size_t I = 0; I < Code->Code.size(); ++I)
    EXPECT_EQ(Code->Code[I].Bc, static_cast<int32_t>(I));
  EXPECT_EQ(Code->T, Tier::Baseline);
  EXPECT_TRUE(Code->Inlined.empty());
}

TEST(Compiler, OptInlinesSmallStaticCallees) {
  CompilerFixture F(calleeSet());
  MethodId Quad = F.method("Math", "quad", "(I)I");
  MethodId Twice = F.method("Math", "twice", "(I)I");
  auto Code = F.TheVM.compiler().compile(Quad, Tier::Opt);
  ASSERT_EQ(Code->Inlined.size(), 1u);
  EXPECT_EQ(Code->Inlined[0], Twice);
  // No call instruction remains.
  for (const RInstr &I : Code->Code)
    EXPECT_NE(I.Op, ROp::CallStatic);
  // Inlined locals extend the frame.
  EXPECT_GT(Code->NumLocals,
            F.TheVM.registry().method(Quad).Def->NumLocals);
}

TEST(Compiler, InlinedCodeComputesTheSameResult) {
  CompilerFixture F(calleeSet());
  // Force-compile at opt tier, then run.
  MethodId Quad = F.method("Math", "quad", "(I)I");
  RtMethod &M = F.TheVM.registry().method(Quad);
  M.Code = F.TheVM.compiler().compile(Quad, Tier::Opt);
  EXPECT_EQ(F.TheVM.callStatic("Math", "quad", "(I)I", {Slot::ofInt(7)})
                .IntVal,
            28);
}

TEST(Compiler, RecursionIsNotInlined) {
  CompilerFixture F(calleeSet());
  MethodId Fact = F.method("Math", "fact", "(I)I");
  auto Code = F.TheVM.compiler().compile(Fact, Tier::Opt);
  EXPECT_TRUE(Code->Inlined.empty());
  bool HasCall = false;
  for (const RInstr &I : Code->Code)
    HasCall |= I.Op == ROp::CallStatic;
  EXPECT_TRUE(HasCall);
}

TEST(Compiler, InlineDepthIsBounded) {
  // Chain a -> b -> c -> d -> e of tiny static calls; with MaxInlineDepth
  // = 3 the innermost call must survive.
  ClassSet Set;
  ClassBuilder CB("Chain");
  CB.staticMethod("e", "()I").iconst(5).iret();
  CB.staticMethod("d", "()I").invokestatic("Chain", "e", "()I").iret();
  CB.staticMethod("c", "()I").invokestatic("Chain", "d", "()I").iret();
  CB.staticMethod("b", "()I").invokestatic("Chain", "c", "()I").iret();
  CB.staticMethod("a", "()I").invokestatic("Chain", "b", "()I").iret();
  Set.add(CB.build());
  CompilerFixture F(Set);
  MethodId A = F.method("Chain", "a", "()I");
  auto Code = F.TheVM.compiler().compile(A, Tier::Opt);
  EXPECT_EQ(Code->Inlined.size(), 3u); // b, c, d inlined; e called
  int Calls = 0;
  for (const RInstr &I : Code->Code)
    Calls += I.Op == ROp::CallStatic;
  EXPECT_EQ(Calls, 1);
  // And it still computes 5.
  F.TheVM.registry().method(A).Code = Code;
  EXPECT_EQ(F.TheVM.callStatic("Chain", "a", "()I").IntVal, 5);
}

TEST(Compiler, LargeCalleesAreNotInlined) {
  ClassSet Set;
  ClassBuilder CB("Big");
  MethodBuilder &MB = CB.staticMethod("big", "()I");
  for (int I = 0; I < 20; ++I)
    MB.iconst(I).pop();
  MB.iconst(1).iret();
  CB.staticMethod("caller", "()I")
      .invokestatic("Big", "big", "()I")
      .iret();
  Set.add(CB.build());
  CompilerFixture F(Set);
  auto Code = F.TheVM.compiler().compile(F.method("Big", "caller", "()I"),
                                         Tier::Opt);
  EXPECT_TRUE(Code->Inlined.empty());
}

TEST(Compiler, ReferencedClassesTrackFieldOwners) {
  ClassSet Set;
  ClassBuilder Box("Box");
  Box.field("v", "I");
  Set.add(Box.build());
  ClassBuilder Other("Other");
  Other.staticField("s", "I");
  Set.add(Other.build());
  ClassBuilder User("UserOfBox");
  User.staticMethod("m", "(LBox;)I")
      .load(0)
      .getfield("Box", "v", "I")
      .getstatic("Other", "s", "I")
      .iadd()
      .iret();
  Set.add(User.build());
  CompilerFixture F(Set);
  auto Code = F.TheVM.compiler().compile(
      F.method("UserOfBox", "m", "(LBox;)I"), Tier::Baseline);
  EXPECT_TRUE(Code->references(F.TheVM.registry().idOf("Box")));
  EXPECT_TRUE(Code->references(F.TheVM.registry().idOf("Other")));
  EXPECT_FALSE(Code->references(F.TheVM.registry().idOf("UserOfBox")));
}

TEST(Compiler, ReferencedClassesIncludeInlinedCallees) {
  ClassSet Set;
  ClassBuilder Box("Box");
  Box.field("v", "I");
  Set.add(Box.build());
  ClassBuilder CB("Wrap");
  CB.staticMethod("read", "(LBox;)I")
      .load(0)
      .getfield("Box", "v", "I")
      .iret();
  CB.staticMethod("outer", "(LBox;)I")
      .load(0)
      .invokestatic("Wrap", "read", "(LBox;)I")
      .iret();
  Set.add(CB.build());
  CompilerFixture F(Set);
  auto Code = F.TheVM.compiler().compile(
      F.method("Wrap", "outer", "(LBox;)I"), Tier::Opt);
  ASSERT_EQ(Code->Inlined.size(), 1u);
  // outer's own bytecode does not touch Box's layout, but the inlined
  // read() does — the compiled form depends on it.
  EXPECT_TRUE(Code->references(F.TheVM.registry().idOf("Box")));
}

TEST(Compiler, FieldOffsetsAreHardCoded) {
  ClassSet Set;
  ClassBuilder Box("Box");
  Box.field("a", "I");
  Box.field("b", "I");
  Set.add(Box.build());
  ClassBuilder CB("R");
  CB.staticMethod("readB", "(LBox;)I")
      .load(0)
      .getfield("Box", "b", "I")
      .iret();
  Set.add(CB.build());
  CompilerFixture F(Set);
  auto Code = F.TheVM.compiler().compile(
      F.method("R", "readB", "(LBox;)I"), Tier::Baseline);
  const RtClass &BoxCls = F.TheVM.registry().cls(F.TheVM.registry().idOf(
      "Box"));
  bool Found = false;
  for (const RInstr &I : Code->Code)
    if (I.Op == ROp::GetFieldI) {
      Found = true;
      EXPECT_EQ(I.A, BoxCls.findInstanceField("b")->Offset);
    }
  EXPECT_TRUE(Found);
}

TEST(Compiler, VirtualCallsResolveToTibSlots) {
  ClassSet Set;
  ClassBuilder A("A");
  A.method("m0", "()I").iconst(0).iret();
  A.method("m1", "()I").iconst(1).iret();
  Set.add(A.build());
  ClassBuilder CB("C");
  CB.staticMethod("call", "(LA;)I")
      .load(0)
      .invokevirtual("A", "m1", "()I")
      .iret();
  Set.add(CB.build());
  CompilerFixture F(Set);
  auto Code = F.TheVM.compiler().compile(F.method("C", "call", "(LA;)I"),
                                         Tier::Baseline);
  const RtClass &ACls = F.TheVM.registry().cls(F.TheVM.registry().idOf("A"));
  for (const RInstr &I : Code->Code)
    if (I.Op == ROp::CallVirt) {
      EXPECT_EQ(I.A, ACls.VTableIndex.at("m1()I"));
    }
}

TEST(Compiler, AdaptivePromotionAtThreshold) {
  VM::Config C = smallConfig();
  C.OptThreshold = 10;
  VM TheVM(C);
  TheVM.loadProgram(calleeSet());
  MethodId Quad = TheVM.registry().resolveMethod(
      TheVM.registry().idOf("Math"), "quad", "(I)I");

  for (int I = 0; I < 9; ++I)
    TheVM.callStatic("Math", "quad", "(I)I", {Slot::ofInt(1)});
  EXPECT_EQ(TheVM.registry().method(Quad).Code->T, Tier::Baseline);
  TheVM.callStatic("Math", "quad", "(I)I", {Slot::ofInt(1)});
  EXPECT_EQ(TheVM.registry().method(Quad).Code->T, Tier::Opt);
  // Behaviour is unchanged after promotion.
  EXPECT_EQ(
      TheVM.callStatic("Math", "quad", "(I)I", {Slot::ofInt(3)}).IntVal,
      12);
}

TEST(Compiler, IndirectionModeFlagsCompiledCode) {
  VM::Config C = smallConfig();
  C.IndirectionMode = true;
  VM TheVM(C);
  TheVM.loadProgram(calleeSet());
  MethodId Twice = TheVM.registry().resolveMethod(
      TheVM.registry().idOf("Math"), "twice", "(I)I");
  auto Code = TheVM.compiler().compile(Twice, Tier::Baseline);
  EXPECT_TRUE(Code->IndirectionChecks);
}

TEST(Compiler, BranchTargetsSurviveInlining) {
  // A caller whose loop surrounds an inlined call: targets must be
  // remapped to resolved indices.
  ClassSet Set;
  ClassBuilder CB("L");
  CB.staticMethod("inc", "(I)I").load(0).iconst(1).iadd().iret();
  CB.staticMethod("sum", "(I)I")
      .locals(2)
      .iconst(0)
      .store(1)
      .label("loop")
      .load(0)
      .branch(Opcode::IfLe, "done")
      .load(1)
      .invokestatic("L", "inc", "(I)I")
      .store(1)
      .load(0)
      .iconst(1)
      .isub()
      .store(0)
      .jump("loop")
      .label("done")
      .load(1)
      .iret();
  Set.add(CB.build());
  CompilerFixture F(Set);
  MethodId Sum = F.method("L", "sum", "(I)I");
  F.TheVM.registry().method(Sum).Code =
      F.TheVM.compiler().compile(Sum, Tier::Opt);
  EXPECT_EQ(
      F.TheVM.callStatic("L", "sum", "(I)I", {Slot::ofInt(5)}).IntVal, 5);
}
