//===----------------------------------------------------------------------===//
///
/// \file
/// The chaos-campaign engine itself: scenario determinism (the property
/// recording mode depends on), clean runs satisfying every oracle, aimed
/// first-order faults firing at their exact probe index, full-coverage
/// mini campaigns, deterministic budget truncation, reproducer/JSON
/// plumbing, and multi-spec --inject parsing.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "support/ChaosCampaign.h"
#include "support/FaultInjector.h"

#include <gtest/gtest.h>

using namespace jvolve;
using namespace jvolve::test;

namespace {

using Site = FaultInjector::Site;

/// Small, fast workload shared by every test here; campaigns re-run it
/// dozens of times, so keep the intervals tight.
ScenarioSpec smallSpec(const std::string &Stream) {
  ScenarioSpec Spec;
  Spec.Stream = Stream;
  Spec.WarmTicks = 300;
  Spec.SettleTicks = 300;
  Spec.Requests = 1;
  return Spec;
}

uint64_t sum(const FaultInjector::SiteCounts &C) {
  uint64_t Total = 0;
  for (uint64_t V : C)
    Total += V;
  return Total;
}

//===----------------------------------------------------------------------===//
// Specs and reproducers.
//===----------------------------------------------------------------------===//

TEST(ChaosCampaign, FaultSpecRoundTripsThroughInjectSyntax) {
  ChaosFault F{Site::TransformerNthObject, 2, 5};
  EXPECT_EQ(F.spec(), "transformer-nth-object:2:5");

  ScenarioSpec Spec = smallSpec("email");
  Spec.Faults = {{Site::ClassLoad, 1, 0}, {Site::HeapAllocNth, 1, 3}};
  EXPECT_EQ(Spec.injectArg(), "class-load:1:0,heap-alloc-nth:1:3");

  // The spec string a violation report carries parses back via the same
  // armFromSpecList the tools use — reproducers stay pasteable.
  FaultInjector FI;
  std::vector<std::string> Errors;
  EXPECT_TRUE(FI.armFromSpecList(Spec.injectArg(), &Errors));
  EXPECT_TRUE(Errors.empty());
  EXPECT_TRUE(FI.armed(Site::ClassLoad));
  EXPECT_TRUE(FI.armed(Site::HeapAllocNth));
}

TEST(ChaosCampaign, SpecListCollectsEveryBadEntryAndArmsTheValid) {
  FaultInjector FI;
  std::vector<std::string> Errors;
  EXPECT_FALSE(FI.armFromSpecList("bogus:1,class-load:1:2,also-bad", &Errors));
  EXPECT_EQ(Errors.size(), 2u);
  // The valid middle entry armed despite its malformed neighbors.
  EXPECT_TRUE(FI.armed(Site::ClassLoad));
  EXPECT_FALSE(FI.probe(Site::ClassLoad)); // skip 1
  EXPECT_FALSE(FI.probe(Site::ClassLoad)); // skip 2
  EXPECT_TRUE(FI.probe(Site::ClassLoad));  // fire
}

//===----------------------------------------------------------------------===//
// Scenario driver.
//===----------------------------------------------------------------------===//

TEST(ChaosCampaign, CleanScenarioSatisfiesEveryOracle) {
  auto Oracles = standardOracles();
  ScenarioResult Res = runScenario(smallSpec("email"), Oracles);
  EXPECT_EQ(Res.Status, UpdateStatus::Applied) << Res.Message;
  EXPECT_FALSE(Res.AnyFired);
  EXPECT_TRUE(Res.ok()) << Res.Violations.front();
  // The update path probed at least the install sites — recording mode
  // has real probe points to enumerate.
  EXPECT_GT(sum(Res.Probes), 0u);
  EXPECT_EQ(sum(Res.Fires), 0u);
}

TEST(ChaosCampaign, ScenarioProbesAreBitIdenticalAcrossRuns) {
  auto Oracles = standardOracles();
  ScenarioSpec Spec = smallSpec("jetty");
  ScenarioResult A = runScenario(Spec, Oracles);
  ScenarioResult B = runScenario(Spec, Oracles);
  // Fresh VMs under virtual time with fixed seeds: the recording pass and
  // every faulted pass see the same probe sequence.
  EXPECT_EQ(A.Status, B.Status);
  EXPECT_EQ(A.Probes, B.Probes);
  EXPECT_EQ(A.Fires, B.Fires);
  EXPECT_EQ(A.Violations, B.Violations);
}

TEST(ChaosCampaign, AimedFaultFiresAtItsExactProbeIndex) {
  auto Oracles = standardOracles();
  ScenarioSpec Clean = smallSpec("email");
  ScenarioResult Ref = runScenario(Clean, Oracles);
  ASSERT_TRUE(Ref.ok());
  uint64_t Points = Ref.Probes[static_cast<size_t>(Site::ClassLoad)];
  ASSERT_GT(Points, 0u) << "email 1.3.2 must load classes during install";

  // Fire the LAST class-load probe: skip = Points - 1. The abort must be
  // a defined terminal status and every invariant must still hold.
  ScenarioSpec Faulted = Clean;
  Faulted.Faults = {{Site::ClassLoad, 1, Points - 1}};
  ScenarioResult Res = runScenario(Faulted, Oracles);
  EXPECT_TRUE(Res.AnyFired);
  EXPECT_EQ(Res.Fires[static_cast<size_t>(Site::ClassLoad)], 1u);
  EXPECT_NE(Res.Status, UpdateStatus::Applied);
  EXPECT_TRUE(Res.ok()) << Res.Violations.front();
  // The first-fire snapshot counts the firing probe itself, so the
  // second-order window [snapshot, total) starts right AFTER the trigger.
  EXPECT_EQ(Res.ProbesAtFirstFire[static_cast<size_t>(Site::ClassLoad)],
            Points);
}

//===----------------------------------------------------------------------===//
// Campaigns.
//===----------------------------------------------------------------------===//

CampaignOptions miniOptions() {
  CampaignOptions Opts;
  Opts.Streams = {"jetty"};
  Opts.WarmTicks = 300;
  Opts.SettleTicks = 300;
  Opts.Requests = 1;
  return Opts;
}

TEST(ChaosCampaign, MiniFirstOrderCampaignReachesFullCoverage) {
  auto Oracles = standardOracles();
  CampaignReport Rep = runCampaign(miniOptions(), Oracles);
  EXPECT_TRUE(Rep.Violations.empty())
      << Rep.Violations.front().Violations.front();
  EXPECT_GT(Rep.ProbePoints, 0u);
  EXPECT_EQ(Rep.Covered, Rep.ProbePoints);
  EXPECT_DOUBLE_EQ(Rep.coverage(), 1.0);
  EXPECT_EQ(Rep.SkippedByBudget, 0u);
  // Sites gated off in this mode (e.g. canary-health-breach with the
  // window off) are bookkept, never silently dropped.
  EXPECT_FALSE(Rep.UnreachableInMode.empty());
}

TEST(ChaosCampaign, BudgetTruncatesToAStablePrefix) {
  auto Oracles = standardOracles();
  CampaignOptions Opts = miniOptions();
  Opts.Budget = 3;
  CampaignReport A = runCampaign(Opts, Oracles);
  EXPECT_GT(A.SkippedByBudget, 0u);
  // + one recording pass per mode combo (eager + the codeversion combo).
  EXPECT_LE(A.Executions, Opts.Budget + 2);
  EXPECT_GT(A.Enumerated, A.ProbePoints);
  EXPECT_TRUE(A.Violations.empty());

  // Deterministic enumeration order: the same bounded run twice is the
  // same report, byte for byte.
  CampaignReport B = runCampaign(Opts, Oracles);
  EXPECT_EQ(A.json(), B.json());
}

TEST(ChaosCampaign, ReportJsonCarriesTheCoverageContract) {
  auto Oracles = standardOracles();
  CampaignOptions Opts = miniOptions();
  Opts.Budget = 1;
  CampaignReport Rep = runCampaign(Opts, Oracles);
  std::string Json = Rep.json();
  EXPECT_NE(Json.find("\"probe_points\""), std::string::npos);
  EXPECT_NE(Json.find("\"covered\""), std::string::npos);
  EXPECT_NE(Json.find("\"coverage\""), std::string::npos);
  EXPECT_NE(Json.find("\"violations\": []"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// The reusable state-invariant core.
//===----------------------------------------------------------------------===//

TEST(ChaosCampaign, StateInvariantsHoldOnAFreshVM) {
  VM TheVM(smallConfig());
  ClassBuilder B("Cell");
  B.field("v", "I");
  ClassSet Set;
  Set.add(B.build());
  TheVM.loadProgram(Set);
  std::vector<std::string> Problems = checkStateInvariants(TheVM);
  EXPECT_TRUE(Problems.empty()) << Problems.front();
}

} // namespace
