//===----------------------------------------------------------------------===//
///
/// \file
/// Transformer-synthesis tests: field-mapping plans (copy, ctor-evidenced
/// rename, ambiguous and retyped fields flagged), transformer
/// installation precedence (handwritten wins, defaults install nothing),
/// end-to-end synthesized renames through a real update, the
/// synth-transformer-field fault rolling an eager update back, the
/// impact-bounded lazy drain bulk-settling layout-unchanged classes, and
/// the dsu.synth.* / dsu.impact.* metrics.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "dsu/LazyTransform.h"
#include "dsu/Synthesis.h"
#include "dsu/Updater.h"
#include "dsu/Upt.h"
#include "heap/HeapVerifier.h"
#include "support/FaultInjector.h"
#include "support/Telemetry.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace jvolve;
using namespace jvolve::test;

namespace {

const FieldMapping *mappingFor(const ClassPlan &P, const std::string &Name) {
  for (const FieldMapping &M : P.Fields)
    if (M.NewField == Name && !M.IsStatic)
      return &M;
  return nullptr;
}

/// Synthesizes the plan for a two-version program pair.
SynthesisReport planFor(const ClassSet &Old, const ClassSet &New) {
  UpdateBundle B = Upt::prepare(Old, New, "test");
  return TransformerSynthesis(Old, New).synthesize(B.Spec);
}

ClassSet withBuiltins(ClassSet Set) {
  ensureBuiltins(Set);
  return Set;
}

//===--------------------------------------------------------------------===//
// Plan-only fixtures
//===--------------------------------------------------------------------===//

/// v1: C{a, p}; v2: C{a, p, n} — pure growth.
ClassSet growthVersion(bool V2) {
  ClassSet Set;
  Set.add(ClassBuilder("Peer").build());
  ClassBuilder C("C");
  C.field("a", "I");
  C.field("p", "LPeer;");
  if (V2)
    C.field("n", "I");
  Set.add(C.build());
  return withBuiltins(std::move(Set));
}

/// v1: C{a} with ctor a = p1; v2: C{b} with ctor b = p1 — the evidenced
/// rename. The Holder/Setup/Probe scaffolding makes the pair a runnable
/// program so the VM tests reuse the same fixture.
ClassSet renameVersion(bool V2) {
  const char *Field = V2 ? "b" : "a";
  ClassSet Set;
  ClassBuilder C("C");
  C.field(Field, "I");
  C.method("<init>", "(I)V")
      .load(0)
      .load(1)
      .putfield("C", Field, "I")
      .ret();
  Set.add(C.build());
  ClassBuilder H("Holder");
  H.staticField("obj", "LC;");
  Set.add(H.build());
  ClassBuilder S("Setup");
  S.staticMethod("init", "()V")
      .newobj("C")
      .dup()
      .iconst(5)
      .putfield("C", Field, "I")
      .putstatic("Holder", "obj", "LC;")
      .ret();
  Set.add(S.build());
  ClassBuilder P("Probe");
  P.staticMethod("get", "()I")
      .getstatic("Holder", "obj", "LC;")
      .getfield("C", Field, "I")
      .iret();
  Set.add(P.build());
  return withBuiltins(std::move(Set));
}

//===--------------------------------------------------------------------===//
// Bulk-settle fixture: 64 Points (updated, layout unchanged) + 4 Stamps
// (gains a field). Only the Stamps genuinely need transforming.
//===--------------------------------------------------------------------===//

constexpr int NumPoints = 64;
constexpr int NumStamps = 4;

void addArrayFill(ClassBuilder &S, const char *MethodName, const char *Cls,
                  const char *Field, const char *Holder, int Count) {
  std::string Elem = std::string("L") + Cls + ";";
  std::string Arr = "[" + Elem;
  S.staticMethod(MethodName, "()V")
      .locals(2)
      .iconst(Count)
      .newarray(Elem)
      .putstatic(Holder, "arr", Arr)
      .iconst(0)
      .store(0)
      .label("loop")
      .load(0)
      .iconst(Count)
      .branch(Opcode::IfICmpGe, "done")
      .newobj(Cls)
      .store(1)
      .load(1)
      .load(0)
      .putfield(Cls, Field, "I")
      .getstatic(Holder, "arr", Arr)
      .load(0)
      .load(1)
      .astore()
      .load(0)
      .iconst(1)
      .iadd()
      .store(0)
      .jump("loop")
      .label("done")
      .ret();
}

void addArraySum(ClassBuilder &P, const char *MethodName, const char *Cls,
                 const char *Field, const char *Holder, int Count) {
  std::string Arr = std::string("[L") + Cls + ";";
  P.staticMethod(MethodName, "()I")
      .locals(2)
      .iconst(0)
      .store(0)
      .iconst(0)
      .store(1)
      .label("loop")
      .load(1)
      .iconst(Count)
      .branch(Opcode::IfICmpGe, "done")
      .load(0)
      .getstatic(Holder, "arr", Arr)
      .load(1)
      .aload()
      .getfield(Cls, Field, "I")
      .iadd()
      .store(0)
      .load(1)
      .iconst(1)
      .iadd()
      .store(1)
      .jump("loop")
      .label("done")
      .load(0)
      .iret();
}

ClassSet settleVersion(bool V2) {
  ClassSet Set;
  ClassBuilder P("Point");
  P.field("x", "I");
  P.method("get", "()I").load(0).getfield("Point", "x", "I").iret();
  if (V2) // class update (new TIB slot) with an identical instance layout
    P.method("extra", "()I").iconst(1).iret();
  Set.add(P.build());
  ClassBuilder S("Stamp");
  S.field("s", "I");
  if (V2)
    S.field("t", "I");
  Set.add(S.build());
  ClassBuilder PH("PHolder");
  PH.staticField("arr", "[LPoint;");
  Set.add(PH.build());
  ClassBuilder SH("SHolder");
  SH.staticField("arr", "[LStamp;");
  Set.add(SH.build());
  ClassBuilder Su("Setup");
  addArrayFill(Su, "points", "Point", "x", "PHolder", NumPoints);
  addArrayFill(Su, "stamps", "Stamp", "s", "SHolder", NumStamps);
  Set.add(Su.build());
  ClassBuilder Pr("Probe");
  addArraySum(Pr, "sumX", "Point", "x", "PHolder", NumPoints);
  addArraySum(Pr, "sumS", "Stamp", "s", "SHolder", NumStamps);
  Set.add(Pr.build());
  return withBuiltins(std::move(Set));
}

void expectHeapHealthy(VM &TheVM, const char *Where) {
  HeapVerifier V(TheVM.heap(), TheVM.registry());
  if (VmLazyEngine *Engine = TheVM.lazyEngine())
    V.setLazyContext([Engine](Ref O) { return Engine->isPendingShell(O); },
                     /*AllowOldCopyReserved=*/!Engine->drained());
  std::vector<std::string> Problems = V.verify(
      [&TheVM](const std::function<void(Ref &)> &Visit) {
        TheVM.visitRoots(Visit);
      });
  EXPECT_TRUE(Problems.empty())
      << Where << ": " << (Problems.empty() ? "" : Problems.front());
}

} // namespace

//===--------------------------------------------------------------------===//
// Field-mapping plans
//===--------------------------------------------------------------------===//

TEST(Synthesis, SameNameFieldsCopyAndNewFieldsKeep) {
  SynthesisReport R = planFor(growthVersion(false), growthVersion(true));

  const ClassPlan *P = R.plan("C");
  ASSERT_NE(P, nullptr);
  ASSERT_EQ(mappingFor(*P, "a")->Action, FieldAction::Copy);
  ASSERT_EQ(mappingFor(*P, "p")->Action, FieldAction::Copy);
  ASSERT_EQ(mappingFor(*P, "n")->Action, FieldAction::Keep);
  EXPECT_FALSE(P->needsHumanRule());
  EXPECT_FALSE(P->LayoutUnchanged); // a field was added
  EXPECT_EQ(R.NumCopies, 2u);
  EXPECT_EQ(R.NumRenames, 0u);
  EXPECT_EQ(R.NumFlagged, 0u);
  EXPECT_TRUE(R.flaggedFields().empty());
}

TEST(Synthesis, ConstructorEvidencePairsRename) {
  SynthesisReport R = planFor(renameVersion(false), renameVersion(true));

  const ClassPlan *P = R.plan("C");
  ASSERT_NE(P, nullptr);
  const FieldMapping *M = mappingFor(*P, "b");
  ASSERT_NE(M, nullptr);
  EXPECT_EQ(M->Action, FieldAction::Rename);
  EXPECT_EQ(M->OldField, "a");
  EXPECT_NE(M->Note.find("constructor parameter"), std::string::npos);
  EXPECT_EQ(R.NumRenames, 1u);
  EXPECT_EQ(R.NumFlagged, 0u);
}

TEST(Synthesis, AmbiguousRenameCandidatesAreFlagged) {
  // Two same-type fields dropped, two added, no constructors: guessing
  // either pairing could silently shear data, so both are flagged.
  auto Version = [](bool V2) {
    ClassSet Set;
    ClassBuilder C("C");
    C.field(V2 ? "c" : "a", "I");
    C.field(V2 ? "d" : "b", "I");
    Set.add(C.build());
    return withBuiltins(std::move(Set));
  };
  SynthesisReport R = planFor(Version(false), Version(true));

  const ClassPlan *P = R.plan("C");
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(mappingFor(*P, "c")->Action, FieldAction::Flagged);
  EXPECT_EQ(mappingFor(*P, "d")->Action, FieldAction::Flagged);
  EXPECT_TRUE(P->needsHumanRule());
  EXPECT_EQ(R.NumFlagged, 2u);
  std::vector<std::string> Flagged = R.flaggedFields();
  EXPECT_NE(std::find(Flagged.begin(), Flagged.end(), "C.c"), Flagged.end());
  EXPECT_NE(std::find(Flagged.begin(), Flagged.end(), "C.d"), Flagged.end());
}

TEST(Synthesis, RetypedFieldIsFlaggedNotConverted) {
  // Fig. 2's String[] -> EmailAddress[]: same name, new type. Only a
  // human can write the value conversion; the plan says so.
  auto Version = [](bool V2) {
    ClassSet Set;
    Set.add(ClassBuilder("Addr").build());
    ClassBuilder C("C");
    C.field("addrs", V2 ? "[LAddr;" : "[LString;");
    Set.add(C.build());
    return withBuiltins(std::move(Set));
  };
  SynthesisReport R = planFor(Version(false), Version(true));

  const ClassPlan *P = R.plan("C");
  ASSERT_NE(P, nullptr);
  const FieldMapping *M = mappingFor(*P, "addrs");
  ASSERT_NE(M, nullptr);
  EXPECT_EQ(M->Action, FieldAction::Flagged);
  EXPECT_NE(M->Note.find("type changed"), std::string::npos);
  EXPECT_EQ(R.flaggedFields(),
            (std::vector<std::string>{"C.addrs"}));
}

TEST(Synthesis, LayoutUnchangedUpdatedClassIsUntouched) {
  SynthesisReport R = planFor(settleVersion(false), settleVersion(true));

  const ClassPlan *P = R.plan("Point");
  ASSERT_NE(P, nullptr);
  EXPECT_TRUE(P->LayoutUnchanged);
  EXPECT_TRUE(R.UntouchedClasses.count("Point"));
  EXPECT_TRUE(R.ImpactClasses.count("Point"));
  const ClassPlan *S = R.plan("Stamp");
  ASSERT_NE(S, nullptr);
  EXPECT_FALSE(S->LayoutUnchanged);
  EXPECT_FALSE(R.UntouchedClasses.count("Stamp"));
}

TEST(Synthesis, ImpactClosureFollowsRefFieldsButNotBystanders) {
  auto Version = [](bool V2) {
    ClassSet Set;
    ClassBuilder O("Other");
    O.field("v", "I");
    Set.add(O.build());
    ClassBuilder U("Unrelated");
    U.field("u", "I");
    Set.add(U.build());
    ClassBuilder C("C");
    C.field("r", "LOther;");
    if (V2)
      C.field("n", "I");
    Set.add(C.build());
    return withBuiltins(std::move(Set));
  };
  ClassSet Old = Version(false), New = Version(true);
  UpdateBundle B = Upt::prepare(Old, New, "test");
  SynthesisReport R = TransformerSynthesis(Old, New).synthesize(B.Spec);

  EXPECT_TRUE(R.ImpactClasses.count("C"));
  EXPECT_TRUE(R.ImpactClasses.count("Other"));
  EXPECT_FALSE(R.ImpactClasses.count("Unrelated"));
  // The runtime mirror (what the updater computes at certify time from
  // the new program and spec alone) agrees with the synthesis report.
  EXPECT_EQ(TransformerSynthesis::impactClasses(New, B.Spec),
            R.ImpactClasses);
}

//===--------------------------------------------------------------------===//
// Installation precedence
//===--------------------------------------------------------------------===//

TEST(Synthesis, DefaultOnlyPlansInstallNoTransformer) {
  ClassSet Old = growthVersion(false), New = growthVersion(true);
  UpdateBundle B = Upt::prepare(Old, New, "test");
  SynthesisReport R = TransformerSynthesis(Old, New).synthesize(B.Spec);
  TransformerSynthesis::installTransformers(B, R);
  // Copies and keeps are exactly what the UPT default already does;
  // installing a transformer for them would only slow the drain down.
  EXPECT_TRUE(B.ObjectTransformers.empty());
  EXPECT_TRUE(B.ClassTransformers.empty());
}

TEST(Synthesis, RenamePlanInstallsTransformerUnlessHandwritten) {
  ClassSet Old = renameVersion(false), New = renameVersion(true);
  {
    UpdateBundle B = Upt::prepare(Old, New, "test");
    SynthesisReport R = TransformerSynthesis(Old, New).synthesize(B.Spec);
    TransformerSynthesis::installTransformers(B, R);
    EXPECT_EQ(B.ObjectTransformers.count("C"), 1u);
  }
  {
    UpdateBundle B = Upt::prepare(Old, New, "test");
    B.ObjectTransformers["C"] = [](TransformCtx &Ctx, Ref To, Ref) {
      Ctx.setInt(To, "b", 1234);
    };
    SynthesisReport R = TransformerSynthesis(Old, New).synthesize(B.Spec);
    TransformerSynthesis::installTransformers(B, R);

    // The handwritten rule must survive installation: apply the update
    // and observe its effect (the synthesized rename would copy 5).
    VM TheVM(smallConfig());
    TheVM.loadProgram(renameVersion(false));
    TheVM.callStatic("Setup", "init", "()V");
    Updater U(TheVM);
    UpdateResult Res = U.applyNow(std::move(B));
    ASSERT_EQ(Res.Status, UpdateStatus::Applied) << Res.Message;
    EXPECT_EQ(TheVM.callStatic("Probe", "get", "()I").IntVal, 1234);
  }
}

//===--------------------------------------------------------------------===//
// End-to-end behavior
//===--------------------------------------------------------------------===//

TEST(Synthesis, SynthesizedRenameCarriesHeapStateAcrossUpdate) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(renameVersion(false));
  TheVM.callStatic("Setup", "init", "()V");
  ASSERT_EQ(TheVM.callStatic("Probe", "get", "()I").IntVal, 5);

  UpdateBundle B =
      Upt::prepare(renameVersion(false), renameVersion(true), "v1");
  SynthesisReport R =
      TransformerSynthesis(renameVersion(false), renameVersion(true))
          .synthesize(B.Spec);
  // renameVersion keeps its own ClassSets alive only inside the calls
  // above; synthesize copies everything it needs into the report.
  TransformerSynthesis::installTransformers(B, R);

  Updater U(TheVM);
  UpdateResult Res = U.applyNow(std::move(B));
  ASSERT_EQ(Res.Status, UpdateStatus::Applied) << Res.Message;
  // a's value rode the rename into b; the default would have zeroed it.
  EXPECT_EQ(TheVM.callStatic("Probe", "get", "()I").IntVal, 5);
  expectHeapHealthy(TheVM, "after rename update");
}

TEST(Synthesis, FaultedMappingRollsBackEagerUpdate) {
  if (std::getenv("JVOLVE_LAZY"))
    GTEST_SKIP() << "post-commit transformer failures degrade instead of "
                    "rolling back under JVOLVE_LAZY=1";
  VM TheVM(smallConfig());
  TheVM.loadProgram(renameVersion(false));
  TheVM.callStatic("Setup", "init", "()V");

  UpdateBundle B =
      Upt::prepare(renameVersion(false), renameVersion(true), "v1");
  TheVM.faults().arm(FaultInjector::Site::SynthTransformerField);
  SynthesisReport R =
      TransformerSynthesis(renameVersion(false), renameVersion(true))
          .synthesize(B.Spec, &TheVM.faults());
  ASSERT_NE(R.plan("C"), nullptr);
  ASSERT_TRUE(R.plan("C")->Faulted);
  TransformerSynthesis::installTransformers(B, R);

  Updater U(TheVM);
  UpdateResult Res = U.applyNow(std::move(B));
  // The corrupted mapping reads a nonexistent source field: the
  // transformer throws mid-transaction and the snapshot is restored.
  EXPECT_EQ(Res.Status, UpdateStatus::FailedTransformer) << Res.Message;
  EXPECT_EQ(TheVM.callStatic("Probe", "get", "()I").IntVal, 5);
  expectHeapHealthy(TheVM, "after rollback");
}

TEST(Synthesis, ImpactBoundedLazyDrainBulkSettlesUntouchedClasses) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(settleVersion(false));
  TheVM.callStatic("Setup", "points", "()V");
  TheVM.callStatic("Setup", "stamps", "()V");
  const int64_t SumX = NumPoints * (NumPoints - 1) / 2;
  const int64_t SumS = NumStamps * (NumStamps - 1) / 2;
  ASSERT_EQ(TheVM.callStatic("Probe", "sumX", "()I").IntVal, SumX);

  Updater U(TheVM);
  UpdateOptions Opts;
  Opts.LazyTransform = true;
  Opts.ImpactBoundedDrain = true;
  UpdateResult Res = U.applyNow(
      Upt::prepare(settleVersion(false), settleVersion(true), "v1"), Opts);
  ASSERT_EQ(Res.Status, UpdateStatus::Applied) << Res.Message;
  ASSERT_TRUE(Res.LazyInstalled);

  auto *Engine = dynamic_cast<LazyTransformEngine *>(TheVM.lazyEngine());
  ASSERT_NE(Engine, nullptr);
  // Every Point was settled in bulk at arm time — none of them went
  // through the drain loop or the read barrier — while the Stamps (whose
  // layout grew) were transformed individually.
  EXPECT_EQ(Engine->bulkSettled(), static_cast<uint64_t>(NumPoints));
  EXPECT_EQ(Engine->onDemandTransforms() + Engine->backgroundTransforms(),
            static_cast<uint64_t>(NumStamps));
  EXPECT_TRUE(Engine->drained());
  EXPECT_EQ(Engine->pendingCount(), 0u);

  EXPECT_EQ(TheVM.callStatic("Probe", "sumX", "()I").IntVal, SumX);
  EXPECT_EQ(TheVM.callStatic("Probe", "sumS", "()I").IntVal, SumS);
  expectHeapHealthy(TheVM, "after impact-bounded drain");
}

//===--------------------------------------------------------------------===//
// Metrics
//===--------------------------------------------------------------------===//

TEST(Synthesis, RecordSynthesisMetricsPublishesCountersAndGauges) {
  SynthesisReport R = planFor(renameVersion(false), renameVersion(true));

  Telemetry &Tel = Telemetry::global();
  Tel.setEnabled(true);
  uint64_t RunsBefore = Tel.counter(metrics::DsuSynthRuns).value();
  uint64_t RenamesBefore = Tel.counter(metrics::DsuSynthRenames).value();
  recordSynthesisMetrics(R);
  EXPECT_EQ(Tel.counter(metrics::DsuSynthRuns).value(), RunsBefore + 1);
  EXPECT_EQ(Tel.counter(metrics::DsuSynthRenames).value(),
            RenamesBefore + 1);
  EXPECT_EQ(Tel.gauge(metrics::DsuImpactClasses).value(),
            static_cast<int64_t>(R.ImpactClasses.size()));
  EXPECT_EQ(Tel.gauge(metrics::DsuImpactUntouched).value(),
            static_cast<int64_t>(R.UntouchedClasses.size()));
  Tel.setEnabled(false);
}
