//===----------------------------------------------------------------------===//
///
/// \file
/// Lazy object-transformation tests: the update commits with untransformed
/// shells behind a read barrier, objects transform on first touch or from
/// the background drainer, the barrier retires to zero steady-state cost,
/// and post-commit transformer failures degrade (trap + diagnostic)
/// instead of rolling back. Mid-drain states are observed via schedule()
/// plus manual driving — applyNow() intentionally completes the drain.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "dsu/LazyTransform.h"
#include "dsu/Transformers.h"
#include "dsu/Updater.h"
#include "dsu/Upt.h"
#include "heap/HeapVerifier.h"
#include "support/FaultInjector.h"

#include <gtest/gtest.h>

using namespace jvolve;
using namespace jvolve::test;

namespace {

constexpr int NumPoints = 96;

/// v1: Point{x}, a static array of NumPoints instances (x = 0..N-1), a
/// probe summing x, and an Idler daemon that keeps the VM schedulable
/// without ever touching a Point. v2: Point{x, y}; probe sums x*10 + y.
/// v1 sum = 1128; v2 sum with default-transformed objects (y = 0) = 11280.
ClassSet lazyVersion(bool V2) {
  ClassSet Set;
  ClassBuilder P("Point");
  P.field("x", "I");
  if (V2)
    P.field("y", "I");
  Set.add(P.build());
  ClassBuilder H("ArrHolder");
  H.staticField("arr", "[LPoint;");
  Set.add(H.build());
  ClassBuilder S("ArrSetup");
  S.staticMethod("init", "()V")
      .locals(2)
      .iconst(NumPoints)
      .newarray("LPoint;")
      .putstatic("ArrHolder", "arr", "[LPoint;")
      .iconst(0)
      .store(0)
      .label("loop")
      .load(0)
      .iconst(NumPoints)
      .branch(Opcode::IfICmpGe, "done")
      .newobj("Point")
      .store(1)
      .load(1)
      .load(0)
      .putfield("Point", "x", "I")
      .getstatic("ArrHolder", "arr", "[LPoint;")
      .load(0)
      .load(1)
      .astore()
      .load(0)
      .iconst(1)
      .iadd()
      .store(0)
      .jump("loop")
      .label("done")
      .ret();
  Set.add(S.build());
  ClassBuilder Pr("ArrProbe");
  MethodBuilder &M = Pr.staticMethod("sum", "()I").locals(3);
  M.iconst(0)
      .store(0)
      .iconst(0)
      .store(1)
      .label("loop")
      .load(1)
      .iconst(NumPoints)
      .branch(Opcode::IfICmpGe, "done")
      .getstatic("ArrHolder", "arr", "[LPoint;")
      .load(1)
      .aload()
      .store(2)
      .load(0)
      .load(2)
      .getfield("Point", "x", "I");
  if (V2)
    M.iconst(10).imul().iadd().load(2).getfield("Point", "y", "I").iadd();
  else
    M.iadd();
  M.store(0)
      .load(1)
      .iconst(1)
      .iadd()
      .store(1)
      .jump("loop")
      .label("done")
      .load(0)
      .iret();
  Set.add(Pr.build());
  ClassBuilder I("Idler");
  I.staticMethod("loop", "()V")
      .label("top")
      .iconst(20)
      .intrinsic(IntrinsicId::SleepTicks)
      .jump("top");
  Set.add(I.build());
  return Set;
}

constexpr int64_t SumV1 = NumPoints * (NumPoints - 1) / 2;
constexpr int64_t SumV2 = 10 * NumPoints * (NumPoints - 1) / 2;

/// Boots the v1 program, builds the array, and starts the idler daemon so
/// the scheduler always has a runnable thread (and the drainer gets real
/// quanta instead of synchronous settling).
std::unique_ptr<VM> bootLazyFixture() {
  auto TheVM = std::make_unique<VM>(smallConfig());
  TheVM->loadProgram(lazyVersion(false));
  TheVM->callStatic("ArrSetup", "init", "()V");
  TheVM->spawnThread("Idler", "loop", "()V", {}, "idler", /*Daemon=*/true);
  TheVM->run(100);
  return TheVM;
}

/// schedule() + tiny driving chunks so the test regains control right at
/// resolution, while most shells are still pending: the drainer settles
/// roughly one shell per tick it is scheduled, so the chunk size bounds
/// how much of the drain can slip past the commit inside one chunk.
UpdateResult scheduleLazyAndResolve(VM &TheVM, Updater &U,
                                    UpdateBundle Bundle,
                                    UpdateOptions Opts) {
  U.schedule(std::move(Bundle), Opts);
  for (int I = 0; I < 100'000 && U.pending(); ++I)
    TheVM.run(25);
  return U.result();
}

LazyTransformEngine *engineOf(VM &TheVM) {
  return static_cast<LazyTransformEngine *>(TheVM.lazyEngine());
}

void expectHeapHealthy(VM &TheVM, const char *Where) {
  HeapVerifier V(TheVM.heap(), TheVM.registry());
  if (VmLazyEngine *Engine = TheVM.lazyEngine())
    V.setLazyContext([Engine](Ref O) { return Engine->isPendingShell(O); },
                     /*AllowOldCopyReserved=*/!Engine->drained());
  std::vector<std::string> Problems = V.verify(
      [&TheVM](const std::function<void(Ref &)> &Visit) {
        TheVM.visitRoots(Visit);
      });
  EXPECT_TRUE(Problems.empty())
      << Where << ": " << (Problems.empty() ? "" : Problems.front());
}

} // namespace

TEST(LazyTransform, CommitDefersTransformsAndBarrierSettlesOnDemand) {
  std::unique_ptr<VM> TheVM = bootLazyFixture();
  EXPECT_EQ(TheVM->callStatic("ArrProbe", "sum", "()I").IntVal, SumV1);

  Updater U(*TheVM);
  UpdateOptions Opts;
  Opts.LazyTransform = true;
  Opts.LazyDrainBatch = 1; // trickle so the test observes pending shells
  UpdateResult R = scheduleLazyAndResolve(
      *TheVM, U, Upt::prepare(lazyVersion(false), lazyVersion(true), "v1"),
      Opts);
  ASSERT_EQ(R.Status, UpdateStatus::Applied) << R.Message;
  EXPECT_TRUE(R.LazyInstalled);
  EXPECT_EQ(R.LazyPendingAtCommit, static_cast<uint64_t>(NumPoints));
  EXPECT_EQ(R.Trace.count(UpdateEventKind::LazyCommitted), 1);

  LazyTransformEngine *Engine = engineOf(*TheVM);
  ASSERT_NE(Engine, nullptr);
  ASSERT_GT(Engine->pendingCount(), 0u) << "drain finished before the test "
                                           "could observe the lazy window";
  expectHeapHealthy(*TheVM, "mid-drain");

  // First touch of each remaining shell runs its transformer behind the
  // read barrier — the probe sees fully transformed v2 values.
  EXPECT_EQ(TheVM->callStatic("ArrProbe", "sum", "()I").IntVal, SumV2);
  EXPECT_GT(Engine->onDemandTransforms(), 0u);
  EXPECT_GE(Engine->barrierHits(), Engine->onDemandTransforms());
  EXPECT_TRUE(Engine->drained());
  EXPECT_EQ(Engine->onDemandTransforms() + Engine->backgroundTransforms(),
            static_cast<uint64_t>(NumPoints));
}

TEST(LazyTransform, BackgroundDrainerRetiresBarrierAndReleasesOldCopySpace) {
  std::unique_ptr<VM> TheVM = bootLazyFixture();

  Updater U(*TheVM);
  UpdateOptions Opts;
  Opts.LazyTransform = true;
  Opts.LazyDrainBatch = 4;
  Opts.UseOldCopySpace = true;
  UpdateResult R = scheduleLazyAndResolve(
      *TheVM, U, Upt::prepare(lazyVersion(false), lazyVersion(true), "v1"),
      Opts);
  ASSERT_EQ(R.Status, UpdateStatus::Applied) << R.Message;
  ASSERT_TRUE(R.LazyInstalled);

  // Never touch a Point: the background drainer alone must settle every
  // shell and then retire the barrier.
  LazyTransformEngine *Engine = engineOf(*TheVM);
  ASSERT_NE(Engine, nullptr);
  for (int I = 0; I < 10'000 && !Engine->retired(); ++I)
    TheVM->run(200);
  ASSERT_TRUE(Engine->retired());
  EXPECT_TRUE(Engine->drained());
  EXPECT_EQ(Engine->onDemandTransforms(), 0u);
  EXPECT_EQ(Engine->backgroundTransforms(),
            static_cast<uint64_t>(NumPoints));
  EXPECT_GT(Engine->drainTicks(), 0u);

  // Retirement returns steady state to exactly zero: no compiled method
  // carries the barrier bit, and the old-copy block is released.
  ClassRegistry &Reg = TheVM->registry();
  for (size_t M = 0; M < Reg.numMethods(); ++M) {
    if (auto &Code = Reg.method(static_cast<MethodId>(M)).Code) {
      EXPECT_FALSE(Code->LazyBarriers)
          << Reg.method(static_cast<MethodId>(M)).Name;
    }
  }
  EXPECT_FALSE(TheVM->heap().hasOldCopySpace());

  EXPECT_EQ(TheVM->callStatic("ArrProbe", "sum", "()I").IntVal, SumV2);
  expectHeapHealthy(*TheVM, "after retirement");
}

TEST(LazyTransform, OnDemandFailureTrapsTouchingThreadAndDegrades) {
  std::unique_ptr<VM> TheVM = bootLazyFixture();

  UpdateBundle B = Upt::prepare(lazyVersion(false), lazyVersion(true), "v1");
  B.ObjectTransformers["Point"] = [](TransformCtx &Ctx, Ref, Ref From) {
    Ctx.getInt(From, "nope"); // no such field: UpdateError("transform")
  };
  Updater U(*TheVM);
  UpdateOptions Opts;
  Opts.LazyTransform = true;
  Opts.LazyDrainBatch = 1;
  UpdateResult R = scheduleLazyAndResolve(*TheVM, U, std::move(B), Opts);

  // Post-commit there is no snapshot left: the update stays Applied and
  // failures degrade it instead of rolling it back.
  ASSERT_EQ(R.Status, UpdateStatus::Applied) << R.Message;
  ASSERT_TRUE(R.LazyInstalled);
  LazyTransformEngine *Engine = engineOf(*TheVM);
  ASSERT_NE(Engine, nullptr);
  ASSERT_GT(Engine->pendingCount(), 0u);

  // A reader touching a pending shell hits the barrier, the transformer
  // throws, and the thread traps with the structured diagnostic.
  ThreadId Reader = TheVM->spawnThread("ArrProbe", "sum", "()I", {}, "reader");
  TheVM->run(20'000);
  VMThread *T = TheVM->scheduler().findThread(Reader);
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->State, ThreadState::Trapped);
  EXPECT_NE(T->TrapMessage.find("lazy-transform failed"), std::string::npos)
      << T->TrapMessage;

  EXPECT_GE(Engine->failedTransforms(), 1u);
  ASSERT_FALSE(Engine->failures().empty());
  EXPECT_FALSE(TheVM->lazyFailureLog().empty());
  EXPECT_NE(TheVM->lazyFailureLog().front().find("Point"),
            std::string::npos);

  // The drainer records the remaining failures and still retires: failed
  // shells settle as valid default-initialized objects, the heap verifies,
  // and the VM survives.
  for (int I = 0; I < 10'000 && !Engine->retired(); ++I)
    TheVM->run(200);
  ASSERT_TRUE(Engine->retired());
  EXPECT_EQ(Engine->failedTransforms(), static_cast<uint64_t>(NumPoints));
  expectHeapHealthy(*TheVM, "after degraded drain");
  std::vector<std::string> Reg = TheVM->registry().checkConsistency();
  EXPECT_TRUE(Reg.empty()) << Reg.front();
}

TEST(LazyTransform, StackedUpdateDrainsPredecessorSynchronously) {
  std::unique_ptr<VM> TheVM = bootLazyFixture();

  Updater U(*TheVM);
  UpdateOptions Opts;
  Opts.LazyTransform = true;
  Opts.LazyDrainBatch = 1;
  UpdateResult R1 = scheduleLazyAndResolve(
      *TheVM, U, Upt::prepare(lazyVersion(false), lazyVersion(true), "v1"),
      Opts);
  ASSERT_EQ(R1.Status, UpdateStatus::Applied) << R1.Message;
  ASSERT_NE(TheVM->lazyEngine(), nullptr);
  ASSERT_GT(TheVM->lazyEngine()->pendingCount(), 0u);

  // Stack a second (eager, body-only) update while the first still drains:
  // scheduling it settles the predecessor synchronously first — its DSU
  // collection must never see pending shells. The changed method must not
  // be on any stack (the idler's loop never returns).
  ClassSet V3 = lazyVersion(true);
  V3.find("ArrProbe")->findMethod("sum", "()I")->Code.push_back(
      {Opcode::Nop, 0, "", "", ""});
  UpdateResult R2 =
      U.applyNow(Upt::prepare(lazyVersion(true), V3, "v2"));
  ASSERT_EQ(R2.Status, UpdateStatus::Applied) << R2.Message;
  EXPECT_FALSE(R2.LazyInstalled);
  EXPECT_EQ(TheVM->lazyEngine(), nullptr);

  // Every predecessor shell was settled before the second update ran.
  EXPECT_EQ(TheVM->callStatic("ArrProbe", "sum", "()I").IntVal, SumV2);
  expectHeapHealthy(*TheVM, "after stacked update");
}

TEST(LazyTransform, RegularGcDuringDrainMigratesOldCopies) {
  std::unique_ptr<VM> TheVM = bootLazyFixture();

  Updater U(*TheVM);
  UpdateOptions Opts;
  Opts.LazyTransform = true;
  Opts.LazyDrainBatch = 1;
  Opts.UseOldCopySpace = true;
  UpdateResult R = scheduleLazyAndResolve(
      *TheVM, U, Upt::prepare(lazyVersion(false), lazyVersion(true), "v1"),
      Opts);
  ASSERT_EQ(R.Status, UpdateStatus::Applied) << R.Message;
  LazyTransformEngine *Engine = engineOf(*TheVM);
  ASSERT_NE(Engine, nullptr);
  ASSERT_GT(Engine->pendingCount(), 0u);
  size_t PendingBefore = Engine->pendingCount();

  // A regular collection mid-drain: unsettled shells and old copies are
  // engine roots, so they survive the move; the engine rebuilds its index
  // and releases the now-empty dedicated old-copy block.
  TheVM->collectGarbage();
  EXPECT_EQ(Engine->pendingCount(), PendingBefore);
  EXPECT_FALSE(TheVM->heap().hasOldCopySpace());
  expectHeapHealthy(*TheVM, "after mid-drain collection");

  // On-demand transforms still work against the migrated old copies.
  EXPECT_EQ(TheVM->callStatic("ArrProbe", "sum", "()I").IntVal, SumV2);
  EXPECT_TRUE(Engine->drained());

  for (int I = 0; I < 10'000 && !Engine->retired(); ++I)
    TheVM->run(200);
  EXPECT_TRUE(Engine->retired());
  expectHeapHealthy(*TheVM, "after retirement");
}
