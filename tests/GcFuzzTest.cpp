//===----------------------------------------------------------------------===//
///
/// \file
/// Randomized GC stress: seeded random mutations of an object graph with
/// collections forced at random points (and dynamic updates sprinkled in),
/// validated by checksums and the heap-invariant verifier. Parameterized
/// over seeds — a property-style test of collector correctness.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "dsu/Canary.h"
#include "dsu/Transformers.h"
#include "dsu/Updater.h"
#include "dsu/Upt.h"
#include "heap/HeapVerifier.h"
#include "support/ChaosCampaign.h"
#include "support/FaultInjector.h"
#include "support/Rng.h"

#include <cstdlib>
#include <gtest/gtest.h>

using namespace jvolve;
using namespace jvolve::test;

namespace {

/// Graph node with two out-edges and a payload.
ClassSet graphVersion(bool Extra) {
  ClassSet Set;
  ClassBuilder N("GNode");
  N.field("v", "I");
  N.field("left", "LGNode;");
  N.field("right", "LGNode;");
  if (Extra)
    N.field("tag", "I");
  Set.add(N.build());
  ClassBuilder H("GRoots");
  H.staticField("slots", "[LGNode;");
  Set.add(H.build());
  return Set;
}

constexpr int NumRootSlots = 16;

Ref rootsArray(VM &TheVM) {
  return TheVM.registry()
      .cls(TheVM.registry().idOf("GRoots"))
      .Statics[0]
      .RefVal;
}

/// Deterministic checksum of everything reachable from the root slots.
int64_t graphChecksum(VM &TheVM) {
  TransformCtx Ctx(TheVM, nullptr);
  Ref Arr = rootsArray(TheVM);
  int64_t Sum = 0;
  std::vector<Ref> Stack;
  std::set<Ref> Seen;
  for (int64_t I = 0; I < NumRootSlots; ++I)
    if (Ref R = Ctx.getElemRef(Arr, I))
      Stack.push_back(R);
  int64_t Position = 1;
  while (!Stack.empty()) {
    Ref Cur = Stack.back();
    Stack.pop_back();
    if (!Cur || !Seen.insert(Cur).second)
      continue;
    Sum += Ctx.getInt(Cur, "v") * (Position++ % 1009);
    Stack.push_back(Ctx.getRef(Cur, "left"));
    Stack.push_back(Ctx.getRef(Cur, "right"));
  }
  return Sum;
}

/// The chaos campaigns' state-invariant oracles: heap certification with
/// the lazy engine's pending-shell context, registry consistency, and no
/// undo-log roots pinned by a settled canary window — strictly stronger
/// than the bare HeapVerifier pass this test used before.
void verifyInvariants(VM &TheVM, const char *Where) {
  std::vector<std::string> Problems = checkStateInvariants(TheVM);
  ASSERT_TRUE(Problems.empty()) << Where << ": " << Problems.front();
}

class GcFuzzTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(GcFuzzTest, RandomMutationsSurviveCollectionsAndUpdates) {
  Rng R(GetParam());
  VM::Config Cfg = smallConfig();
  Cfg.HeapSpaceBytes = 1u << 20; // small: organic collections under churn
  VM TheVM(Cfg);
  TheVM.loadProgram(graphVersion(false));

  ClassRegistry &Reg = TheVM.registry();
  ClassId NodeId = Reg.idOf("GNode");
  ClassId ArrId = Reg.arrayClassOf(Type::refTy("GNode"));
  Reg.cls(Reg.idOf("GRoots")).Statics[0] =
      Slot::ofRef(TheVM.allocateArray(ArrId, NumRootSlots));

  TransformCtx Ctx(TheVM, nullptr);
  int64_t NextValue = 1;

  for (int Step = 0; Step < 4'000; ++Step) {
    uint64_t Op = R.nextBelow(100);
    Ref Arr = rootsArray(TheVM);
    int64_t SlotA = static_cast<int64_t>(R.nextBelow(NumRootSlots));
    int64_t SlotB = static_cast<int64_t>(R.nextBelow(NumRootSlots));

    if (Op < 45) {
      // Allocate a node referencing two random roots.
      Ref Node = TheVM.allocateObject(NodeId);
      ASSERT_NE(Node, nullptr);
      Arr = rootsArray(TheVM); // allocation may have collected
      Ctx.setInt(Node, "v", NextValue++);
      Ctx.setRef(Node, "left", Ctx.getElemRef(Arr, SlotA));
      Ctx.setRef(Node, "right", Ctx.getElemRef(Arr, SlotB));
      Ctx.setElemRef(Arr, static_cast<int64_t>(R.nextBelow(NumRootSlots)),
                     Node);
    } else if (Op < 65) {
      // Rewire an edge.
      if (Ref Node = Ctx.getElemRef(Arr, SlotA))
        Ctx.setRef(Node, R.nextBelow(2) ? "left" : "right",
                   Ctx.getElemRef(Arr, SlotB));
    } else if (Op < 80) {
      // Drop a root (creates garbage).
      Ctx.setElemRef(Arr, SlotA, nullptr);
    } else if (Op < 95) {
      // Pure garbage churn.
      for (int I = 0; I < 16; ++I)
        ASSERT_NE(TheVM.allocateObject(NodeId), nullptr);
    } else {
      // Forced full collection with checksum validation.
      int64_t Before = graphChecksum(TheVM);
      TheVM.collectGarbage();
      EXPECT_EQ(graphChecksum(TheVM), Before) << "step " << Step;
    }
  }
  verifyInvariants(TheVM, "after churn");

  // Finale: a dynamic update over whatever graph the fuzz left behind.
  int64_t Before = graphChecksum(TheVM);
  Updater U(TheVM);
  UpdateOptions Opts;
  Opts.UseOldCopySpace = GetParam() % 2 == 0; // alternate configurations
  UpdateResult Res = U.applyNow(
      Upt::prepare(graphVersion(false), graphVersion(true), "v1"), Opts);
  ASSERT_EQ(Res.Status, UpdateStatus::Applied) << Res.Message;
  EXPECT_EQ(graphChecksum(TheVM), Before);
  verifyInvariants(TheVM, "after update");

  TheVM.collectGarbage();
  EXPECT_EQ(graphChecksum(TheVM), Before);
  verifyInvariants(TheVM, "after post-update collection");
}

TEST_P(GcFuzzTest, RandomFaultsDuringUpdateNeverCorrupt) {
  // A seeded random fault site fires probabilistically mid-update. Whatever
  // terminal status results, the graph must checksum identically (the v2
  // "tag" field never feeds the checksum), the heap must verify, and once
  // the fault is disarmed the same update must land cleanly.
  Rng R(GetParam() * 7919 + 17);
  VM TheVM(smallConfig());
  TheVM.loadProgram(graphVersion(false));

  ClassRegistry &Reg = TheVM.registry();
  ClassId NodeId = Reg.idOf("GNode");
  ClassId ArrId = Reg.arrayClassOf(Type::refTy("GNode"));
  Reg.cls(Reg.idOf("GRoots")).Statics[0] =
      Slot::ofRef(TheVM.allocateArray(ArrId, NumRootSlots));

  TransformCtx Ctx(TheVM, nullptr);
  for (int I = 0; I < 400; ++I) {
    Ref Node = TheVM.allocateObject(NodeId);
    ASSERT_NE(Node, nullptr);
    Ref Arr = rootsArray(TheVM);
    Ctx.setInt(Node, "v", I + 1);
    Ctx.setRef(Node, "left",
               Ctx.getElemRef(Arr, static_cast<int64_t>(R.nextBelow(NumRootSlots))));
    Ctx.setRef(Node, "right",
               Ctx.getElemRef(Arr, static_cast<int64_t>(R.nextBelow(NumRootSlots))));
    Ctx.setElemRef(Arr, static_cast<int64_t>(R.nextBelow(NumRootSlots)), Node);
  }
  int64_t Before = graphChecksum(TheVM);

  auto Where =
      static_cast<FaultInjector::Site>(R.nextBelow(FaultInjector::NumSites));
  if (std::getenv("JVOLVE_LAZY") &&
      (Where == FaultInjector::Site::TransformerNthObject ||
       Where == FaultInjector::Site::TransformerCycle ||
       Where == FaultInjector::Site::LazyDrainTransformer ||
       Where == FaultInjector::Site::HeapAllocNth))
    GTEST_SKIP() << "transformer faults (and allocation faults inside the "
                    "post-commit drain's transformers) fire after the point "
                    "of no return under JVOLVE_LAZY=1 and degrade the heap "
                    "by design (zeroed shells change the checksum); "
                    "DsuRollbackTest covers that policy";
  TheVM.faults().armRandom(Where, 0.3, GetParam());

  Updater U(TheVM);
  UpdateOptions Opts;
  Opts.TimeoutTicks = 20'000;
  Opts.UseOldCopySpace = GetParam() % 2 == 0;
  UpdateResult Res = U.applyNow(
      Upt::prepare(graphVersion(false), graphVersion(true), "v1"), Opts);
  EXPECT_TRUE(Res.Status == UpdateStatus::Applied ||
              Res.Status == UpdateStatus::RolledBack ||
              Res.Status == UpdateStatus::FailedTransformer ||
              Res.Status == UpdateStatus::TimedOut ||
              Res.Status == UpdateStatus::RejectedNotVerifiable)
      << updateStatusName(Res.Status) << ": " << Res.Message;
  TheVM.faults().reset();

  EXPECT_EQ(graphChecksum(TheVM), Before)
      << "site " << FaultInjector::siteName(Where) << " corrupted the graph";
  verifyInvariants(TheVM, "after faulted update");
  TheVM.collectGarbage();
  EXPECT_EQ(graphChecksum(TheVM), Before);
  verifyInvariants(TheVM, "after post-fault collection");

  if (Res.Status != UpdateStatus::Applied) {
    UpdateResult Clean = U.applyNow(
        Upt::prepare(graphVersion(false), graphVersion(true), "v1"), Opts);
    ASSERT_EQ(Clean.Status, UpdateStatus::Applied) << Clean.Message;
    EXPECT_EQ(graphChecksum(TheVM), Before);
    verifyInvariants(TheVM, "after clean retry");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GcFuzzTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST_P(GcFuzzTest, CanaryChurnAndFaultedRevertNeverCorrupt) {
  // Mid-canary: the undo log's retained refs must survive random mutation
  // churn and forced collections like any other root. Mid-revert: a seeded
  // random fault fires inside the reverse update; whether the revert lands
  // or fails, the graph must checksum identically and the heap must verify.
  Rng R(GetParam() * 104'729 + 5);
  VM TheVM(smallConfig());
  TheVM.loadProgram(graphVersion(false));

  ClassRegistry &Reg = TheVM.registry();
  ClassId NodeId = Reg.idOf("GNode");
  ClassId ArrId = Reg.arrayClassOf(Type::refTy("GNode"));
  Reg.cls(Reg.idOf("GRoots")).Statics[0] =
      Slot::ofRef(TheVM.allocateArray(ArrId, NumRootSlots));

  TransformCtx Ctx(TheVM, nullptr);
  for (int I = 0; I < 400; ++I) {
    Ref Node = TheVM.allocateObject(NodeId);
    ASSERT_NE(Node, nullptr);
    Ref Arr = rootsArray(TheVM);
    Ctx.setInt(Node, "v", I + 1);
    Ctx.setRef(Node, "left",
               Ctx.getElemRef(Arr, static_cast<int64_t>(R.nextBelow(NumRootSlots))));
    Ctx.setRef(Node, "right",
               Ctx.getElemRef(Arr, static_cast<int64_t>(R.nextBelow(NumRootSlots))));
    Ctx.setElemRef(Arr, static_cast<int64_t>(R.nextBelow(NumRootSlots)), Node);
  }

  Updater U(TheVM);
  UpdateOptions Opts;
  Opts.UseOldCopySpace = GetParam() % 2 == 0;
  Opts.CanaryWindow.WindowTicks = 1'000'000'000; // only a revert closes it
  Opts.CanaryWindow.CheckIntervalTicks = 2'000;
  UpdateResult Res = U.applyNow(
      Upt::prepare(graphVersion(false), graphVersion(true), "v1"), Opts);
  ASSERT_EQ(Res.Status, UpdateStatus::Applied) << Res.Message;
  ASSERT_TRUE(Res.CanaryArmed);
  // TransformCtx reads bypass the interpreter's read barrier, so settle
  // any lazily-committed shells before the checksum walks the graph.
  TheVM.drainLazyEngineNow();

  // Churn inside the observation window: mutations, garbage, collections,
  // and enough ticks for the watchdog-driven health checks to run.
  int64_t NextValue = 1'000;
  for (int Step = 0; Step < 600; ++Step) {
    uint64_t Op = R.nextBelow(100);
    Ref Arr = rootsArray(TheVM);
    int64_t SlotA = static_cast<int64_t>(R.nextBelow(NumRootSlots));
    int64_t SlotB = static_cast<int64_t>(R.nextBelow(NumRootSlots));
    if (Op < 40) {
      Ref Node = TheVM.allocateObject(NodeId);
      ASSERT_NE(Node, nullptr);
      Arr = rootsArray(TheVM);
      Ctx.setInt(Node, "v", NextValue++);
      Ctx.setRef(Node, "left", Ctx.getElemRef(Arr, SlotA));
      Ctx.setRef(Node, "right", Ctx.getElemRef(Arr, SlotB));
      Ctx.setElemRef(Arr, static_cast<int64_t>(R.nextBelow(NumRootSlots)),
                     Node);
    } else if (Op < 60) {
      if (Ref Node = Ctx.getElemRef(Arr, SlotA))
        Ctx.setRef(Node, R.nextBelow(2) ? "left" : "right",
                   Ctx.getElemRef(Arr, SlotB));
    } else if (Op < 75) {
      Ctx.setElemRef(Arr, SlotA, nullptr);
    } else if (Op < 90) {
      TheVM.run(500); // let the canary's health checks tick
    } else {
      TheVM.collectGarbage(); // undo-log roots must survive and reindex
    }
  }
  verifyInvariants(TheVM, "after mid-canary churn");
  int64_t Before = graphChecksum(TheVM);

  auto Where =
      static_cast<FaultInjector::Site>(R.nextBelow(FaultInjector::NumSites));
  TheVM.faults().armRandom(Where, 0.3, GetParam());
  UpdateResult Rev = U.revert("fuzz revert", /*MaxDriveTicks=*/5'000'000);
  TheVM.faults().reset();
  EXPECT_TRUE(Rev.Status == UpdateStatus::Reverted ||
              Rev.Status == UpdateStatus::RevertFailed)
      << updateStatusName(Rev.Status) << ": " << Rev.Message;

  // The v2 "tag" field never feeds the checksum, so it is invariant
  // across both outcomes: old version back, or new version standing.
  EXPECT_EQ(graphChecksum(TheVM), Before)
      << "site " << FaultInjector::siteName(Where) << " corrupted the graph";
  verifyInvariants(TheVM, "after faulted revert");
  TheVM.collectGarbage();
  EXPECT_EQ(graphChecksum(TheVM), Before);
  verifyInvariants(TheVM, "after post-revert collection");

  auto *Ctl = static_cast<CanaryController *>(TheVM.canary());
  ASSERT_NE(Ctl, nullptr);
  if (Rev.Status == UpdateStatus::Reverted) {
    EXPECT_TRUE(Upt::computeSpec(TheVM.program(), graphVersion(false)).empty());
    EXPECT_EQ(Ctl->report().ResidualNewObjects, 0u);
  } else {
    // The forward update stands when its revert fails.
    EXPECT_EQ(Ctl->state(), CanaryState::RevertFailed);
    EXPECT_TRUE(Upt::computeSpec(TheVM.program(), graphVersion(true)).empty());
  }
}
