//===----------------------------------------------------------------------===//
///
/// \file
/// Randomized GC stress: seeded random mutations of an object graph with
/// collections forced at random points (and dynamic updates sprinkled in),
/// validated by checksums and the heap-invariant verifier. Parameterized
/// over seeds — a property-style test of collector correctness.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "dsu/Transformers.h"
#include "dsu/Updater.h"
#include "dsu/Upt.h"
#include "heap/HeapVerifier.h"
#include "support/FaultInjector.h"
#include "support/Rng.h"

#include <cstdlib>
#include <gtest/gtest.h>

using namespace jvolve;
using namespace jvolve::test;

namespace {

/// Graph node with two out-edges and a payload.
ClassSet graphVersion(bool Extra) {
  ClassSet Set;
  ClassBuilder N("GNode");
  N.field("v", "I");
  N.field("left", "LGNode;");
  N.field("right", "LGNode;");
  if (Extra)
    N.field("tag", "I");
  Set.add(N.build());
  ClassBuilder H("GRoots");
  H.staticField("slots", "[LGNode;");
  Set.add(H.build());
  return Set;
}

constexpr int NumRootSlots = 16;

Ref rootsArray(VM &TheVM) {
  return TheVM.registry()
      .cls(TheVM.registry().idOf("GRoots"))
      .Statics[0]
      .RefVal;
}

/// Deterministic checksum of everything reachable from the root slots.
int64_t graphChecksum(VM &TheVM) {
  TransformCtx Ctx(TheVM, nullptr);
  Ref Arr = rootsArray(TheVM);
  int64_t Sum = 0;
  std::vector<Ref> Stack;
  std::set<Ref> Seen;
  for (int64_t I = 0; I < NumRootSlots; ++I)
    if (Ref R = Ctx.getElemRef(Arr, I))
      Stack.push_back(R);
  int64_t Position = 1;
  while (!Stack.empty()) {
    Ref Cur = Stack.back();
    Stack.pop_back();
    if (!Cur || !Seen.insert(Cur).second)
      continue;
    Sum += Ctx.getInt(Cur, "v") * (Position++ % 1009);
    Stack.push_back(Ctx.getRef(Cur, "left"));
    Stack.push_back(Ctx.getRef(Cur, "right"));
  }
  return Sum;
}

void verifyInvariants(VM &TheVM, const char *Where) {
  HeapVerifier V(TheVM.heap(), TheVM.registry());
  std::vector<std::string> Problems = V.verify(
      [&TheVM](const std::function<void(Ref &)> &Visit) {
        TheVM.visitRoots(Visit);
      });
  ASSERT_TRUE(Problems.empty()) << Where << ": " << Problems.front();
}

class GcFuzzTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(GcFuzzTest, RandomMutationsSurviveCollectionsAndUpdates) {
  Rng R(GetParam());
  VM::Config Cfg = smallConfig();
  Cfg.HeapSpaceBytes = 1u << 20; // small: organic collections under churn
  VM TheVM(Cfg);
  TheVM.loadProgram(graphVersion(false));

  ClassRegistry &Reg = TheVM.registry();
  ClassId NodeId = Reg.idOf("GNode");
  ClassId ArrId = Reg.arrayClassOf(Type::refTy("GNode"));
  Reg.cls(Reg.idOf("GRoots")).Statics[0] =
      Slot::ofRef(TheVM.allocateArray(ArrId, NumRootSlots));

  TransformCtx Ctx(TheVM, nullptr);
  int64_t NextValue = 1;

  for (int Step = 0; Step < 4'000; ++Step) {
    uint64_t Op = R.nextBelow(100);
    Ref Arr = rootsArray(TheVM);
    int64_t SlotA = static_cast<int64_t>(R.nextBelow(NumRootSlots));
    int64_t SlotB = static_cast<int64_t>(R.nextBelow(NumRootSlots));

    if (Op < 45) {
      // Allocate a node referencing two random roots.
      Ref Node = TheVM.allocateObject(NodeId);
      ASSERT_NE(Node, nullptr);
      Arr = rootsArray(TheVM); // allocation may have collected
      Ctx.setInt(Node, "v", NextValue++);
      Ctx.setRef(Node, "left", Ctx.getElemRef(Arr, SlotA));
      Ctx.setRef(Node, "right", Ctx.getElemRef(Arr, SlotB));
      Ctx.setElemRef(Arr, static_cast<int64_t>(R.nextBelow(NumRootSlots)),
                     Node);
    } else if (Op < 65) {
      // Rewire an edge.
      if (Ref Node = Ctx.getElemRef(Arr, SlotA))
        Ctx.setRef(Node, R.nextBelow(2) ? "left" : "right",
                   Ctx.getElemRef(Arr, SlotB));
    } else if (Op < 80) {
      // Drop a root (creates garbage).
      Ctx.setElemRef(Arr, SlotA, nullptr);
    } else if (Op < 95) {
      // Pure garbage churn.
      for (int I = 0; I < 16; ++I)
        ASSERT_NE(TheVM.allocateObject(NodeId), nullptr);
    } else {
      // Forced full collection with checksum validation.
      int64_t Before = graphChecksum(TheVM);
      TheVM.collectGarbage();
      EXPECT_EQ(graphChecksum(TheVM), Before) << "step " << Step;
    }
  }
  verifyInvariants(TheVM, "after churn");

  // Finale: a dynamic update over whatever graph the fuzz left behind.
  int64_t Before = graphChecksum(TheVM);
  Updater U(TheVM);
  UpdateOptions Opts;
  Opts.UseOldCopySpace = GetParam() % 2 == 0; // alternate configurations
  UpdateResult Res = U.applyNow(
      Upt::prepare(graphVersion(false), graphVersion(true), "v1"), Opts);
  ASSERT_EQ(Res.Status, UpdateStatus::Applied) << Res.Message;
  EXPECT_EQ(graphChecksum(TheVM), Before);
  verifyInvariants(TheVM, "after update");

  TheVM.collectGarbage();
  EXPECT_EQ(graphChecksum(TheVM), Before);
  verifyInvariants(TheVM, "after post-update collection");
}

TEST_P(GcFuzzTest, RandomFaultsDuringUpdateNeverCorrupt) {
  // A seeded random fault site fires probabilistically mid-update. Whatever
  // terminal status results, the graph must checksum identically (the v2
  // "tag" field never feeds the checksum), the heap must verify, and once
  // the fault is disarmed the same update must land cleanly.
  Rng R(GetParam() * 7919 + 17);
  VM TheVM(smallConfig());
  TheVM.loadProgram(graphVersion(false));

  ClassRegistry &Reg = TheVM.registry();
  ClassId NodeId = Reg.idOf("GNode");
  ClassId ArrId = Reg.arrayClassOf(Type::refTy("GNode"));
  Reg.cls(Reg.idOf("GRoots")).Statics[0] =
      Slot::ofRef(TheVM.allocateArray(ArrId, NumRootSlots));

  TransformCtx Ctx(TheVM, nullptr);
  for (int I = 0; I < 400; ++I) {
    Ref Node = TheVM.allocateObject(NodeId);
    ASSERT_NE(Node, nullptr);
    Ref Arr = rootsArray(TheVM);
    Ctx.setInt(Node, "v", I + 1);
    Ctx.setRef(Node, "left",
               Ctx.getElemRef(Arr, static_cast<int64_t>(R.nextBelow(NumRootSlots))));
    Ctx.setRef(Node, "right",
               Ctx.getElemRef(Arr, static_cast<int64_t>(R.nextBelow(NumRootSlots))));
    Ctx.setElemRef(Arr, static_cast<int64_t>(R.nextBelow(NumRootSlots)), Node);
  }
  int64_t Before = graphChecksum(TheVM);

  auto Where =
      static_cast<FaultInjector::Site>(R.nextBelow(FaultInjector::NumSites));
  if (std::getenv("JVOLVE_LAZY") &&
      (Where == FaultInjector::Site::TransformerNthObject ||
       Where == FaultInjector::Site::TransformerCycle ||
       Where == FaultInjector::Site::LazyDrainTransformer))
    GTEST_SKIP() << "transformer faults fire post-commit under JVOLVE_LAZY=1 "
                    "and degrade the heap by design (zeroed shells change "
                    "the checksum); DsuRollbackTest covers that policy";
  TheVM.faults().armRandom(Where, 0.3, GetParam());

  Updater U(TheVM);
  UpdateOptions Opts;
  Opts.TimeoutTicks = 20'000;
  Opts.UseOldCopySpace = GetParam() % 2 == 0;
  UpdateResult Res = U.applyNow(
      Upt::prepare(graphVersion(false), graphVersion(true), "v1"), Opts);
  EXPECT_TRUE(Res.Status == UpdateStatus::Applied ||
              Res.Status == UpdateStatus::RolledBack ||
              Res.Status == UpdateStatus::FailedTransformer ||
              Res.Status == UpdateStatus::TimedOut)
      << updateStatusName(Res.Status) << ": " << Res.Message;
  TheVM.faults().reset();

  EXPECT_EQ(graphChecksum(TheVM), Before)
      << "site " << FaultInjector::siteName(Where) << " corrupted the graph";
  verifyInvariants(TheVM, "after faulted update");
  TheVM.collectGarbage();
  EXPECT_EQ(graphChecksum(TheVM), Before);
  verifyInvariants(TheVM, "after post-fault collection");

  if (Res.Status != UpdateStatus::Applied) {
    UpdateResult Clean = U.applyNow(
        Upt::prepare(graphVersion(false), graphVersion(true), "v1"), Opts);
    ASSERT_EQ(Clean.Status, UpdateStatus::Applied) << Clean.Message;
    EXPECT_EQ(graphChecksum(TheVM), Before);
    verifyInvariants(TheVM, "after clean retry");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GcFuzzTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));
