//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the VM-wide telemetry layer: counter/gauge/histogram
/// semantics, snapshot determinism, the disabled-mode guarantee, and the
/// JSONL trace sink.
///
//===----------------------------------------------------------------------===//

#include "support/Telemetry.h"
#include "support/TelemetryStream.h"

#include <fstream>
#include <gtest/gtest.h>
#include <map>
#include <thread>

using namespace jvolve;

namespace {

/// Every test runs against the process-global registry, so each one
/// starts from zeroed instruments and leaves telemetry disabled (the
/// process default) for whatever test binary runs next.
class TelemetryTest : public ::testing::Test {
protected:
  void SetUp() override {
    Telemetry::global().reset();
    Telemetry::global().setEnabled(true);
  }
  void TearDown() override {
    Telemetry::global().closeTrace();
    Telemetry::global().setEnabled(false);
    Telemetry::global().reset();
  }
};

TEST_F(TelemetryTest, CounterAccumulates) {
  TelCounter &C = Telemetry::global().counter("test.counter");
  EXPECT_EQ(C.value(), 0u);
  C.inc();
  C.add(41);
  EXPECT_EQ(C.value(), 42u);
}

TEST_F(TelemetryTest, GaugeLastValueWinsAndDeltas) {
  TelGauge &G = Telemetry::global().gauge("test.gauge");
  G.set(7);
  EXPECT_EQ(G.value(), 7);
  G.set(-3);
  EXPECT_EQ(G.value(), -3);
  G.add(10);
  EXPECT_EQ(G.value(), 7);
}

TEST_F(TelemetryTest, HandleIdentityIsStable) {
  TelCounter &A = Telemetry::global().counter("test.same");
  TelCounter &B = Telemetry::global().counter("test.same");
  EXPECT_EQ(&A, &B);
}

TEST_F(TelemetryTest, HistogramStatsAndBuckets) {
  TelHistogram &H =
      Telemetry::global().histogram("test.hist", {1.0, 10.0, 100.0});
  EXPECT_EQ(H.numBuckets(), 4u); // 3 bounds + overflow
  for (double V : {0.5, 5.0, 50.0, 500.0, 5.0})
    H.record(V);
  EXPECT_EQ(H.count(), 5u);
  EXPECT_DOUBLE_EQ(H.sum(), 560.5);
  EXPECT_DOUBLE_EQ(H.min(), 0.5);
  EXPECT_DOUBLE_EQ(H.max(), 500.0);
  EXPECT_DOUBLE_EQ(H.mean(), 112.1);
  EXPECT_EQ(H.bucketCount(0), 1u); // <= 1
  EXPECT_EQ(H.bucketCount(1), 2u); // <= 10
  EXPECT_EQ(H.bucketCount(2), 1u); // <= 100
  EXPECT_EQ(H.bucketCount(3), 1u); // overflow
  EXPECT_DOUBLE_EQ(H.percentile(0), 0.5);
  EXPECT_DOUBLE_EQ(H.percentile(100), 500.0);
  EXPECT_DOUBLE_EQ(H.percentile(50), 5.0);
}

TEST_F(TelemetryTest, HistogramBoundaryValueGoesToUpperBucket) {
  // Bucket i covers [bound_{i-1}, bound_i): a value exactly on a bound
  // belongs to the bucket that starts there.
  TelHistogram &H = Telemetry::global().histogram("test.bound", {1.0, 10.0});
  H.record(0.99);
  H.record(1.0);
  H.record(10.0);
  EXPECT_EQ(H.bucketCount(0), 1u); // < 1
  EXPECT_EQ(H.bucketCount(1), 1u); // [1, 10)
  EXPECT_EQ(H.bucketCount(2), 1u); // >= 10
}

TEST_F(TelemetryTest, HistogramRecordNeverAllocates) {
  TelHistogram &H = Telemetry::global().histogram("test.ring", {1.0});
  size_t Cap = H.sampleCapacity();
  ASSERT_GT(Cap, 0u);
  // Overfill the reservoir: retained count saturates at the preallocated
  // capacity while count() keeps rising — record() wrote into the ring
  // rather than growing anything.
  for (size_t I = 0; I < Cap + 100; ++I)
    H.record(static_cast<double>(I));
  EXPECT_EQ(H.count(), Cap + 100);
  EXPECT_EQ(H.samplesRetained(), Cap);
  EXPECT_EQ(H.sampleCapacity(), Cap);
}

TEST_F(TelemetryTest, DisabledModeRecordsNothing) {
  TelCounter &C = Telemetry::global().counter("test.disabled.counter");
  TelGauge &G = Telemetry::global().gauge("test.disabled.gauge");
  TelHistogram &H = Telemetry::global().histogram("test.disabled.hist");
  Telemetry::global().setEnabled(false);
  C.add(5);
  G.set(5);
  H.record(5);
  EXPECT_EQ(C.value(), 0u);
  EXPECT_EQ(G.value(), 0);
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.samplesRetained(), 0u);
}

TEST_F(TelemetryTest, ResetZeroesValuesButKeepsRegistrations) {
  Telemetry &Tel = Telemetry::global();
  Tel.counter("test.reset.c").add(3);
  Tel.histogram("test.reset.h").record(1.5);
  Tel.reset();
  ASSERT_NE(Tel.findCounter("test.reset.c"), nullptr);
  ASSERT_NE(Tel.findHistogram("test.reset.h"), nullptr);
  EXPECT_EQ(Tel.findCounter("test.reset.c")->value(), 0u);
  EXPECT_EQ(Tel.findHistogram("test.reset.h")->count(), 0u);
}

TEST_F(TelemetryTest, SnapshotIsDeterministic) {
  Telemetry &Tel = Telemetry::global();
  // Register in non-sorted order; snapshots must still agree byte-for-byte.
  Tel.counter("test.z").add(1);
  Tel.counter("test.a").add(2);
  Tel.gauge("test.m").set(-4);
  Tel.histogram("test.h").record(2.5);
  std::string A = Tel.snapshot().json();
  std::string B = Tel.snapshot().json();
  EXPECT_EQ(A, B);

  Telemetry::Snapshot S = Tel.snapshot();
  ASSERT_GE(S.Metrics.size(), 4u);
  for (size_t I = 1; I < S.Metrics.size(); ++I)
    EXPECT_LT(S.Metrics[I - 1].Name, S.Metrics[I].Name);
  const Telemetry::MetricSnapshot *M = S.find("test.m");
  ASSERT_NE(M, nullptr);
  EXPECT_EQ(M->Value, -4);
  EXPECT_EQ(S.find("test.no-such-metric"), nullptr);
}

TEST_F(TelemetryTest, SnapshotTableRendersEveryMetric) {
  Telemetry &Tel = Telemetry::global();
  Tel.counter("test.table.c").add(9);
  Tel.histogram("test.table.h").record(3.0);
  std::string Table = Tel.snapshot().table();
  EXPECT_NE(Table.find("test.table.c"), std::string::npos);
  EXPECT_NE(Table.find("test.table.h"), std::string::npos);
}

TEST_F(TelemetryTest, TraceEventJsonRoundTrip) {
  TraceEvent E;
  E.Name = "dsu.update.phase";
  E.Phase = "gc";
  E.StartTick = 12345;
  E.EndTick = 12345;
  E.Ms = 1.25;
  E.Value = -7;
  E.Detail = "quotes \" backslash \\ newline \n tab \t done";
  TraceEvent Back;
  ASSERT_TRUE(TraceEvent::parseLine(E.jsonLine(), Back));
  EXPECT_EQ(Back.Name, E.Name);
  EXPECT_EQ(Back.Phase, E.Phase);
  EXPECT_EQ(Back.StartTick, E.StartTick);
  EXPECT_EQ(Back.EndTick, E.EndTick);
  EXPECT_DOUBLE_EQ(Back.Ms, E.Ms);
  EXPECT_EQ(Back.Value, E.Value);
  EXPECT_EQ(Back.Detail, E.Detail);
}

TEST_F(TelemetryTest, ParseLineRejectsMalformedInput) {
  TraceEvent Out;
  EXPECT_FALSE(TraceEvent::parseLine("", Out));
  EXPECT_FALSE(TraceEvent::parseLine("not json", Out));
  EXPECT_FALSE(TraceEvent::parseLine("{\"name\":\"x\"}", Out));
}

TEST_F(TelemetryTest, TraceSinkWritesCompleteFile) {
  std::string Path = ::testing::TempDir() + "telemetry_sink_test.jsonl";
  {
    // A buffer far smaller than the event count forces mid-stream flushes;
    // the file must still hold every event in order.
    TraceSink Sink(Path, 4);
    ASSERT_TRUE(Sink.ok());
    for (int I = 0; I < 10; ++I) {
      TraceEvent E;
      E.Name = "test.event";
      E.Phase = "p" + std::to_string(I);
      E.Value = I;
      Sink.emit(std::move(E));
    }
    EXPECT_EQ(Sink.eventsEmitted(), 10u);
  } // destructor flushes the tail

  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::string Line;
  int N = 0;
  while (std::getline(In, Line)) {
    TraceEvent E;
    ASSERT_TRUE(TraceEvent::parseLine(Line, E)) << Line;
    EXPECT_EQ(E.Value, N);
    ++N;
  }
  EXPECT_EQ(N, 10);
  std::remove(Path.c_str());
}

TEST_F(TelemetryTest, OpenTraceEnablesTelemetryAndEmits) {
  Telemetry &Tel = Telemetry::global();
  Tel.setEnabled(false);
  std::string Path = ::testing::TempDir() + "telemetry_open_test.jsonl";
  ASSERT_TRUE(Tel.openTrace(Path));
  EXPECT_TRUE(Telemetry::isEnabled());
  EXPECT_TRUE(Tel.tracing());
  TraceEvent E;
  E.Name = "test.open";
  Tel.emit(std::move(E));
  Tel.closeTrace();
  EXPECT_FALSE(Tel.tracing());

  std::ifstream In(Path);
  std::string Line;
  ASSERT_TRUE(std::getline(In, Line));
  TraceEvent Back;
  ASSERT_TRUE(TraceEvent::parseLine(Line, Back));
  EXPECT_EQ(Back.Name, "test.open");
  std::remove(Path.c_str());
}

TEST_F(TelemetryTest, DsuMetricNameBuilders) {
  EXPECT_EQ(metrics::dsuPhaseMs("gc"), "dsu.update.phase_ms{phase=gc}");
  EXPECT_EQ(std::string(metrics::DsuTotalPauseMs), metrics::dsuPhaseMs("total"));
  EXPECT_EQ(metrics::faultFired("class-load"),
            "dsu.faults.fired{site=class-load}");
}

//===----------------------------------------------------------------------===//
// Streaming pipeline (support/TelemetryStream.h)
//===----------------------------------------------------------------------===//

TEST_F(TelemetryTest, TraceSinkCountsUnwritableEventsAsDropped) {
  // A sink that never opened its file discards events — but the loss is
  // ledgered, never silent.
  TraceSink Sink("/nonexistent-dir-for-telemetry-test/out.jsonl");
  EXPECT_FALSE(Sink.ok());
  TraceEvent E;
  E.Name = "test.lost";
  Sink.emit(std::move(E));
  EXPECT_EQ(Sink.eventsEmitted(), 0u);
  EXPECT_EQ(Sink.eventsDropped(), 1u);
}

TEST_F(TelemetryTest, ThreadBufferConsumesSeqOnDrop) {
  ThreadEventBuffer Buf(7, "seq-test", 4);
  for (int I = 0; I < 10; ++I) {
    TraceEvent E;
    E.Name = "test.seq";
    E.Value = I;
    Buf.tryWrite(std::move(E));
  }
  // Capacity 4: six writes found the ring full. Every attempt consumed a
  // sequence number, so the drained events expose the loss as a seq gap.
  EXPECT_EQ(Buf.attempted(), 10u);
  EXPECT_EQ(Buf.dropped(), 6u);
  std::vector<TraceEvent> Out;
  EXPECT_EQ(Buf.drainInto(Out, static_cast<size_t>(-1)), 4u);
  ASSERT_EQ(Out.size(), 4u);
  for (size_t I = 0; I < Out.size(); ++I) {
    EXPECT_EQ(Out[I].Tid, 7u);
    EXPECT_EQ(Out[I].Seq, I + 1);
  }
  EXPECT_TRUE(Buf.empty());
}

TEST_F(TelemetryTest, StreamSessionFiltersByPrefix) {
  Telemetry &Tel = Telemetry::global();
  TelemetrySessionConfig Cfg;
  Cfg.Name = "filter-test";
  Cfg.Prefixes = {"keepme."};
  auto S = Tel.streamer().openSession(Cfg);
  ASSERT_TRUE(S);
  TraceEvent Keep;
  Keep.Name = "keepme.event";
  Tel.emit(std::move(Keep));
  TraceEvent Drop;
  Drop.Name = "dropme.event";
  Tel.emit(std::move(Drop));
  Tel.streamer().flushAll();
  std::vector<TraceEvent> Got = S->drainBuffered();
  ASSERT_EQ(Got.size(), 1u);
  EXPECT_EQ(Got[0].Name, "keepme.event");
  EXPECT_GE(S->eventsFiltered(), 1u);
  Tel.streamer().closeSession(S);
}

TEST_F(TelemetryTest, NativeThreadStressExactDropAccounting) {
  // N OS threads hammer deliberately tiny buffers; most events drop. The
  // pipeline's contract: per-thread sequence numbers stay strictly
  // increasing across what survives, every loss surfaces as a gap record,
  // and the global ledger balances to the event.
  Telemetry &Tel = Telemetry::global();
  TelemetryStreamer &St = Tel.streamer();
  const uint64_t A0 = St.attemptedTotal();
  const uint64_t S0 = St.streamedTotal();
  const uint64_t D0 = St.droppedTotal();

  St.setThreadBufferCapacity(16);
  TelemetrySessionConfig Cfg;
  Cfg.Name = "stress";
  Cfg.Prefixes = {"stress."};
  Cfg.BufferBudgetEvents = 1u << 20;
  auto S = St.openSession(Cfg);
  ASSERT_TRUE(S);

  constexpr int NumThreads = 4;
  constexpr int PerThread = 5000;
  std::vector<std::thread> Workers;
  for (int T = 0; T < NumThreads; ++T)
    Workers.emplace_back([&Tel, T] {
      for (int I = 0; I < PerThread; ++I) {
        TraceEvent E;
        E.Name = "stress.event";
        E.Phase = "t" + std::to_string(T);
        E.Value = I;
        Tel.emit(std::move(E));
      }
    }); // thread exit retires its buffer via the streamer's TLS hook
  for (std::thread &W : Workers)
    W.join();
  St.flushAll();

  EXPECT_EQ(St.attemptedTotal() - A0,
            static_cast<uint64_t>(NumThreads) * PerThread);
  // The hard invariant: nothing leaks out of the books.
  EXPECT_EQ(St.attemptedTotal() - A0,
            (St.streamedTotal() - S0) + (St.droppedTotal() - D0));

  // Replay the session: per-tid seqs strictly monotonic, and written
  // events plus gap-record drop counts reconstruct every attempt.
  std::map<uint64_t, uint64_t> LastSeq;
  uint64_t WrittenEvents = 0, GapDrops = 0;
  for (const TraceEvent &E : S->drainBuffered()) {
    if (E.Name == "telemetry.block") {
      EXPECT_EQ(E.Phase, "gap");
      EXPECT_GT(E.Value, 0);
      GapDrops += static_cast<uint64_t>(E.Value);
      continue;
    }
    ASSERT_EQ(E.Name, "stress.event");
    EXPECT_GT(E.Seq, LastSeq[E.Tid]) << "seq regressed on tid " << E.Tid;
    LastSeq[E.Tid] = E.Seq;
    ++WrittenEvents;
  }
  EXPECT_EQ(WrittenEvents + GapDrops,
            static_cast<uint64_t>(NumThreads) * PerThread);
  EXPECT_EQ(GapDrops, St.droppedTotal() - D0);
  EXPECT_GT(GapDrops, 0u) << "capacity 16 under 5000 writes must drop";

  St.closeSession(S);
  St.setThreadBufferCapacity(2048);
}

TEST_F(TelemetryTest, WindowAggregatorRatesAndPercentiles) {
  Telemetry &Tel = Telemetry::global();
  WindowAggregator &W = Tel.windows();
  W.configure(100, 4);
  TelCounter &C = Tel.counter("wintest.counter");
  TelHistogram &H = Tel.histogram("wintest.hist");
  C.add(5);
  for (int I = 1; I <= 100; ++I)
    H.record(static_cast<double>(I));
  W.roll(100);

  WindowAggregator::CounterSeries CS;
  ASSERT_TRUE(W.counterSeries("wintest.counter", CS));
  EXPECT_EQ(CS.LastDelta, 5u);
  EXPECT_DOUBLE_EQ(CS.LastRatePerKtick, 50.0); // 5 per 100 ticks
  EXPECT_EQ(CS.Windows, 1u);

  WindowAggregator::HistSeries HS;
  ASSERT_TRUE(W.histSeries("wintest.hist", HS));
  EXPECT_EQ(HS.LastCount, 100u);
  EXPECT_DOUBLE_EQ(HS.Max, 100.0);
  EXPECT_NEAR(HS.Mean, 50.5, 1e-9);
  EXPECT_NEAR(HS.P50, 50.5, 1e-9);
  EXPECT_NEAR(HS.P99, 99.01, 1e-9);

  // Second window: only the counter moves; deltas are per-window.
  C.add(7);
  W.roll(200);
  ASSERT_TRUE(W.counterSeries("wintest.counter", CS));
  EXPECT_EQ(CS.LastDelta, 7u);
  EXPECT_EQ(CS.MinDelta, 5u);
  EXPECT_EQ(CS.MaxDelta, 7u);
  EXPECT_DOUBLE_EQ(CS.MeanDelta, 6.0);
  EXPECT_EQ(CS.Windows, 2u);
  ASSERT_TRUE(W.histSeries("wintest.hist", HS));
  EXPECT_EQ(HS.LastCount, 0u);

  std::string Table = W.table();
  EXPECT_NE(Table.find("wintest.counter"), std::string::npos);
  EXPECT_NE(Table.find("wintest.hist"), std::string::npos);
  W.configure(0);
}

TEST_F(TelemetryTest, WindowAggregatorSeesLateRegistrations) {
  // The aggregator caches instrument handles between rolls; a metric
  // registered after the first roll must still show up in the next one.
  Telemetry &Tel = Telemetry::global();
  WindowAggregator &W = Tel.windows();
  W.configure(100, 4);
  W.roll(100);
  TelCounter &C = Tel.counter("latereg.counter");
  C.add(3);
  W.roll(200);
  WindowAggregator::CounterSeries CS;
  ASSERT_TRUE(W.counterSeries("latereg.counter", CS));
  EXPECT_EQ(CS.LastDelta, 3u);
  W.configure(0);
}

} // namespace
