//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the VM-wide telemetry layer: counter/gauge/histogram
/// semantics, snapshot determinism, the disabled-mode guarantee, and the
/// JSONL trace sink.
///
//===----------------------------------------------------------------------===//

#include "support/Telemetry.h"

#include <fstream>
#include <gtest/gtest.h>

using namespace jvolve;

namespace {

/// Every test runs against the process-global registry, so each one
/// starts from zeroed instruments and leaves telemetry disabled (the
/// process default) for whatever test binary runs next.
class TelemetryTest : public ::testing::Test {
protected:
  void SetUp() override {
    Telemetry::global().reset();
    Telemetry::global().setEnabled(true);
  }
  void TearDown() override {
    Telemetry::global().closeTrace();
    Telemetry::global().setEnabled(false);
    Telemetry::global().reset();
  }
};

TEST_F(TelemetryTest, CounterAccumulates) {
  TelCounter &C = Telemetry::global().counter("test.counter");
  EXPECT_EQ(C.value(), 0u);
  C.inc();
  C.add(41);
  EXPECT_EQ(C.value(), 42u);
}

TEST_F(TelemetryTest, GaugeLastValueWinsAndDeltas) {
  TelGauge &G = Telemetry::global().gauge("test.gauge");
  G.set(7);
  EXPECT_EQ(G.value(), 7);
  G.set(-3);
  EXPECT_EQ(G.value(), -3);
  G.add(10);
  EXPECT_EQ(G.value(), 7);
}

TEST_F(TelemetryTest, HandleIdentityIsStable) {
  TelCounter &A = Telemetry::global().counter("test.same");
  TelCounter &B = Telemetry::global().counter("test.same");
  EXPECT_EQ(&A, &B);
}

TEST_F(TelemetryTest, HistogramStatsAndBuckets) {
  TelHistogram &H =
      Telemetry::global().histogram("test.hist", {1.0, 10.0, 100.0});
  EXPECT_EQ(H.numBuckets(), 4u); // 3 bounds + overflow
  for (double V : {0.5, 5.0, 50.0, 500.0, 5.0})
    H.record(V);
  EXPECT_EQ(H.count(), 5u);
  EXPECT_DOUBLE_EQ(H.sum(), 560.5);
  EXPECT_DOUBLE_EQ(H.min(), 0.5);
  EXPECT_DOUBLE_EQ(H.max(), 500.0);
  EXPECT_DOUBLE_EQ(H.mean(), 112.1);
  EXPECT_EQ(H.bucketCount(0), 1u); // <= 1
  EXPECT_EQ(H.bucketCount(1), 2u); // <= 10
  EXPECT_EQ(H.bucketCount(2), 1u); // <= 100
  EXPECT_EQ(H.bucketCount(3), 1u); // overflow
  EXPECT_DOUBLE_EQ(H.percentile(0), 0.5);
  EXPECT_DOUBLE_EQ(H.percentile(100), 500.0);
  EXPECT_DOUBLE_EQ(H.percentile(50), 5.0);
}

TEST_F(TelemetryTest, HistogramBoundaryValueGoesToUpperBucket) {
  // Bucket i covers [bound_{i-1}, bound_i): a value exactly on a bound
  // belongs to the bucket that starts there.
  TelHistogram &H = Telemetry::global().histogram("test.bound", {1.0, 10.0});
  H.record(0.99);
  H.record(1.0);
  H.record(10.0);
  EXPECT_EQ(H.bucketCount(0), 1u); // < 1
  EXPECT_EQ(H.bucketCount(1), 1u); // [1, 10)
  EXPECT_EQ(H.bucketCount(2), 1u); // >= 10
}

TEST_F(TelemetryTest, HistogramRecordNeverAllocates) {
  TelHistogram &H = Telemetry::global().histogram("test.ring", {1.0});
  size_t Cap = H.sampleCapacity();
  ASSERT_GT(Cap, 0u);
  // Overfill the reservoir: retained count saturates at the preallocated
  // capacity while count() keeps rising — record() wrote into the ring
  // rather than growing anything.
  for (size_t I = 0; I < Cap + 100; ++I)
    H.record(static_cast<double>(I));
  EXPECT_EQ(H.count(), Cap + 100);
  EXPECT_EQ(H.samplesRetained(), Cap);
  EXPECT_EQ(H.sampleCapacity(), Cap);
}

TEST_F(TelemetryTest, DisabledModeRecordsNothing) {
  TelCounter &C = Telemetry::global().counter("test.disabled.counter");
  TelGauge &G = Telemetry::global().gauge("test.disabled.gauge");
  TelHistogram &H = Telemetry::global().histogram("test.disabled.hist");
  Telemetry::global().setEnabled(false);
  C.add(5);
  G.set(5);
  H.record(5);
  EXPECT_EQ(C.value(), 0u);
  EXPECT_EQ(G.value(), 0);
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.samplesRetained(), 0u);
}

TEST_F(TelemetryTest, ResetZeroesValuesButKeepsRegistrations) {
  Telemetry &Tel = Telemetry::global();
  Tel.counter("test.reset.c").add(3);
  Tel.histogram("test.reset.h").record(1.5);
  Tel.reset();
  ASSERT_NE(Tel.findCounter("test.reset.c"), nullptr);
  ASSERT_NE(Tel.findHistogram("test.reset.h"), nullptr);
  EXPECT_EQ(Tel.findCounter("test.reset.c")->value(), 0u);
  EXPECT_EQ(Tel.findHistogram("test.reset.h")->count(), 0u);
}

TEST_F(TelemetryTest, SnapshotIsDeterministic) {
  Telemetry &Tel = Telemetry::global();
  // Register in non-sorted order; snapshots must still agree byte-for-byte.
  Tel.counter("test.z").add(1);
  Tel.counter("test.a").add(2);
  Tel.gauge("test.m").set(-4);
  Tel.histogram("test.h").record(2.5);
  std::string A = Tel.snapshot().json();
  std::string B = Tel.snapshot().json();
  EXPECT_EQ(A, B);

  Telemetry::Snapshot S = Tel.snapshot();
  ASSERT_GE(S.Metrics.size(), 4u);
  for (size_t I = 1; I < S.Metrics.size(); ++I)
    EXPECT_LT(S.Metrics[I - 1].Name, S.Metrics[I].Name);
  const Telemetry::MetricSnapshot *M = S.find("test.m");
  ASSERT_NE(M, nullptr);
  EXPECT_EQ(M->Value, -4);
  EXPECT_EQ(S.find("test.no-such-metric"), nullptr);
}

TEST_F(TelemetryTest, SnapshotTableRendersEveryMetric) {
  Telemetry &Tel = Telemetry::global();
  Tel.counter("test.table.c").add(9);
  Tel.histogram("test.table.h").record(3.0);
  std::string Table = Tel.snapshot().table();
  EXPECT_NE(Table.find("test.table.c"), std::string::npos);
  EXPECT_NE(Table.find("test.table.h"), std::string::npos);
}

TEST_F(TelemetryTest, TraceEventJsonRoundTrip) {
  TraceEvent E;
  E.Name = "dsu.update.phase";
  E.Phase = "gc";
  E.StartTick = 12345;
  E.EndTick = 12345;
  E.Ms = 1.25;
  E.Value = -7;
  E.Detail = "quotes \" backslash \\ newline \n tab \t done";
  TraceEvent Back;
  ASSERT_TRUE(TraceEvent::parseLine(E.jsonLine(), Back));
  EXPECT_EQ(Back.Name, E.Name);
  EXPECT_EQ(Back.Phase, E.Phase);
  EXPECT_EQ(Back.StartTick, E.StartTick);
  EXPECT_EQ(Back.EndTick, E.EndTick);
  EXPECT_DOUBLE_EQ(Back.Ms, E.Ms);
  EXPECT_EQ(Back.Value, E.Value);
  EXPECT_EQ(Back.Detail, E.Detail);
}

TEST_F(TelemetryTest, ParseLineRejectsMalformedInput) {
  TraceEvent Out;
  EXPECT_FALSE(TraceEvent::parseLine("", Out));
  EXPECT_FALSE(TraceEvent::parseLine("not json", Out));
  EXPECT_FALSE(TraceEvent::parseLine("{\"name\":\"x\"}", Out));
}

TEST_F(TelemetryTest, TraceSinkWritesCompleteFile) {
  std::string Path = ::testing::TempDir() + "telemetry_sink_test.jsonl";
  {
    // A buffer far smaller than the event count forces mid-stream flushes;
    // the file must still hold every event in order.
    TraceSink Sink(Path, 4);
    ASSERT_TRUE(Sink.ok());
    for (int I = 0; I < 10; ++I) {
      TraceEvent E;
      E.Name = "test.event";
      E.Phase = "p" + std::to_string(I);
      E.Value = I;
      Sink.emit(std::move(E));
    }
    EXPECT_EQ(Sink.eventsEmitted(), 10u);
  } // destructor flushes the tail

  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::string Line;
  int N = 0;
  while (std::getline(In, Line)) {
    TraceEvent E;
    ASSERT_TRUE(TraceEvent::parseLine(Line, E)) << Line;
    EXPECT_EQ(E.Value, N);
    ++N;
  }
  EXPECT_EQ(N, 10);
  std::remove(Path.c_str());
}

TEST_F(TelemetryTest, OpenTraceEnablesTelemetryAndEmits) {
  Telemetry &Tel = Telemetry::global();
  Tel.setEnabled(false);
  std::string Path = ::testing::TempDir() + "telemetry_open_test.jsonl";
  ASSERT_TRUE(Tel.openTrace(Path));
  EXPECT_TRUE(Telemetry::isEnabled());
  EXPECT_TRUE(Tel.tracing());
  TraceEvent E;
  E.Name = "test.open";
  Tel.emit(std::move(E));
  Tel.closeTrace();
  EXPECT_FALSE(Tel.tracing());

  std::ifstream In(Path);
  std::string Line;
  ASSERT_TRUE(std::getline(In, Line));
  TraceEvent Back;
  ASSERT_TRUE(TraceEvent::parseLine(Line, Back));
  EXPECT_EQ(Back.Name, "test.open");
  std::remove(Path.c_str());
}

TEST_F(TelemetryTest, DsuMetricNameBuilders) {
  EXPECT_EQ(metrics::dsuPhaseMs("gc"), "dsu.update.phase_ms{phase=gc}");
  EXPECT_EQ(std::string(metrics::DsuTotalPauseMs), metrics::dsuPhaseMs("total"));
  EXPECT_EQ(metrics::faultFired("class-load"),
            "dsu.faults.fired{site=class-load}");
}

} // namespace
