//===----------------------------------------------------------------------===//
///
/// \file
/// Bytecode builder, class set, and disassembler tests.
///
//===----------------------------------------------------------------------===//

#include "bytecode/Builder.h"
#include "bytecode/Builtins.h"
#include "bytecode/Printer.h"

#include <gtest/gtest.h>

using namespace jvolve;

TEST(Builder, LabelResolution) {
  MethodBuilder MB("m", "()I", true);
  MB.iconst(1)
      .branch(Opcode::IfNe, "target")
      .iconst(0)
      .iret()
      .label("target")
      .iconst(9)
      .iret();
  MethodDef M = MB.build();
  ASSERT_EQ(M.Code.size(), 6u);
  EXPECT_EQ(M.Code[1].Op, Opcode::IfNe);
  EXPECT_EQ(M.Code[1].IVal, 4); // points at iconst(9)
}

TEST(Builder, BackwardLabel) {
  MethodBuilder MB("m", "()V", true);
  MB.label("top").iconst(1).pop().jump("top");
  MethodDef M = MB.build();
  EXPECT_EQ(M.Code[2].Op, Opcode::Goto);
  EXPECT_EQ(M.Code[2].IVal, 0);
}

TEST(Builder, LocalsInferredFromSlots) {
  MethodBuilder MB("m", "(I)I", true);
  MB.load(0).store(5).load(5).iret();
  MethodDef M = MB.build();
  EXPECT_EQ(M.NumLocals, 6);
}

TEST(Builder, LocalsCoverParamsForInstanceMethods) {
  MethodBuilder MB("m", "(II)V", /*IsStatic=*/false);
  MB.ret();
  MethodDef M = MB.build();
  EXPECT_GE(M.NumLocals, 3); // this + two params
  EXPECT_EQ(M.numParamSlots(), 3);
}

TEST(Builder, ExplicitLocalsWin) {
  MethodBuilder MB("m", "()V", true);
  MB.locals(10).ret();
  EXPECT_EQ(MB.build().NumLocals, 10);
}

TEST(Builder, ClassFieldsAndMethods) {
  ClassBuilder CB("Widget", "Object");
  CB.field("w", "I", Access::Private, /*IsFinal=*/true);
  CB.staticField("count", "I");
  CB.method("get", "()I").load(0).getfield("Widget", "w", "I").iret();
  ClassDef Def = CB.build();
  EXPECT_EQ(Def.Name, "Widget");
  EXPECT_EQ(Def.Super, "Object");
  ASSERT_EQ(Def.Fields.size(), 2u);
  EXPECT_TRUE(Def.Fields[0].IsFinal);
  EXPECT_FALSE(Def.Fields[0].IsStatic);
  EXPECT_TRUE(Def.Fields[1].IsStatic);
  ASSERT_EQ(Def.Methods.size(), 1u);
  EXPECT_FALSE(Def.Methods[0].IsStatic);
}

TEST(ClassSet, ResolveFieldThroughChain) {
  ClassSet Set;
  ClassBuilder A("A");
  A.field("inherited", "I");
  Set.add(A.build());
  ClassBuilder B("B", "A");
  B.field("own", "I");
  Set.add(B.build());

  std::string Declaring;
  const FieldDef *F = Set.resolveField("B", "inherited", &Declaring);
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(Declaring, "A");
  F = Set.resolveField("B", "own", &Declaring);
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(Declaring, "B");
  EXPECT_EQ(Set.resolveField("B", "missing"), nullptr);
}

TEST(ClassSet, ResolveMethodThroughChain) {
  ClassSet Set;
  ClassBuilder A("A");
  A.method("m", "()I").iconst(1).iret();
  Set.add(A.build());
  ClassBuilder B("B", "A");
  Set.add(B.build());
  std::string Declaring;
  EXPECT_NE(Set.resolveMethod("B", "m", "()I", &Declaring), nullptr);
  EXPECT_EQ(Declaring, "A");
  EXPECT_EQ(Set.resolveMethod("B", "m", "(I)I"), nullptr);
}

TEST(ClassSet, SubclassQueries) {
  ClassSet Set;
  ensureBuiltins(Set);
  Set.add(ClassBuilder("A").build());
  Set.add(ClassBuilder("B", "A").build());
  Set.add(ClassBuilder("C", "B").build());
  EXPECT_TRUE(Set.isSubclassOf("C", "A"));
  EXPECT_TRUE(Set.isSubclassOf("C", "C"));
  EXPECT_FALSE(Set.isSubclassOf("A", "C"));
  EXPECT_TRUE(Set.isSubclassOf("A", "Object"));
  std::vector<std::string> Chain = Set.superChain("C");
  ASSERT_EQ(Chain.size(), 4u);
  EXPECT_EQ(Chain[0], "C");
  EXPECT_EQ(Chain[3], "Object");
}

TEST(ClassSet, ReplaceAndRemove) {
  ClassSet Set;
  Set.add(ClassBuilder("A").build());
  EXPECT_TRUE(Set.contains("A"));
  ClassDef NewA = ClassBuilder("A").field("x", "I").build();
  Set.replace(NewA);
  EXPECT_EQ(Set.find("A")->Fields.size(), 1u);
  Set.remove("A");
  EXPECT_FALSE(Set.contains("A"));
}

TEST(Builtins, EnsureIdempotent) {
  ClassSet Set;
  ensureBuiltins(Set);
  size_t N = Set.size();
  ensureBuiltins(Set);
  EXPECT_EQ(Set.size(), N);
  EXPECT_TRUE(Set.contains("Object"));
  EXPECT_TRUE(Set.contains("String"));
  EXPECT_TRUE(Set.find("Object")->Super.empty());
}

TEST(Printer, InstructionMnemonics) {
  EXPECT_EQ(printInstr({Opcode::IConst, 42, "", "", ""}), "iconst 42");
  EXPECT_EQ(printInstr({Opcode::GetField, 0, "User.age", "I", ""}),
            "getfield User.age I");
  EXPECT_EQ(printInstr({Opcode::InvokeVirtual, 0, "User.get", "()I", ""}),
            "invokevirtual User.get()I");
  EXPECT_EQ(printInstr({Opcode::Goto, 7, "", "", ""}), "goto @7");
  EXPECT_EQ(printInstr({Opcode::SConst, 0, "", "", "hi"}), "sconst \"hi\"");
}

TEST(Printer, MethodListing) {
  MethodBuilder MB("twice", "(I)I", true);
  MB.load(0).iconst(2).imul().iret();
  std::string Out = printMethod(MB.build());
  EXPECT_NE(Out.find("static twice(I)I"), std::string::npos);
  EXPECT_NE(Out.find("0: load 0"), std::string::npos);
  EXPECT_NE(Out.find("3: ireturn"), std::string::npos);
}

TEST(Printer, ClassListing) {
  ClassBuilder CB("Pair");
  CB.field("a", "I");
  CB.method("sum", "()I").load(0).getfield("Pair", "a", "I").iret();
  std::string Out = printClass(CB.build());
  EXPECT_NE(Out.find("class Pair extends Object"), std::string::npos);
  EXPECT_NE(Out.find("I a;"), std::string::npos);
}

TEST(Instruction, EqualityDrivesDiffs) {
  Instr A{Opcode::IConst, 1, "", "", ""};
  Instr B{Opcode::IConst, 2, "", "", ""};
  EXPECT_NE(A, B);
  B.IVal = 1;
  EXPECT_EQ(A, B);
}

TEST(Instruction, MethodCodeEquals) {
  MethodBuilder M1("m", "()I", true);
  M1.iconst(5).iret();
  MethodBuilder M2("m", "()I", true);
  M2.iconst(5).iret();
  MethodBuilder M3("m", "()I", true);
  M3.iconst(6).iret();
  MethodDef A = M1.build(), B = M2.build(), C = M3.build();
  EXPECT_TRUE(A.codeEquals(B));
  EXPECT_FALSE(A.codeEquals(C));
}
