//===----------------------------------------------------------------------===//
///
/// \file
/// Update-trace tests: the event log narrates each protocol path the way
/// §4.2 narrates it in prose — immediate safe points, barrier arm/fire
/// cycles, OSR, rejections, and timeouts.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "dsu/Updater.h"
#include "dsu/Upt.h"
#include "support/Telemetry.h"

#include <fstream>
#include <gtest/gtest.h>

using namespace jvolve;
using namespace jvolve::test;

namespace {

ClassSet traceVersion(int64_t HandleValue, bool ExtraField) {
  ClassSet Set;
  ClassBuilder S("Svc");
  S.staticField("total", "I");
  if (ExtraField)
    S.field("pad", "I");
  else
    S.field("padOld", "I");
  S.staticMethod("handle", "()V")
      .iconst(40)
      .intrinsic(IntrinsicId::SleepTicks)
      .getstatic("Svc", "total", "I")
      .iconst(HandleValue)
      .iadd()
      .putstatic("Svc", "total", "I")
      .ret();
  S.staticMethod("loop", "()V")
      .label("top")
      .invokestatic("Svc", "handle", "()V")
      .iconst(10)
      .intrinsic(IntrinsicId::SleepTicks)
      .jump("top");
  Set.add(S.build());
  return Set;
}

} // namespace

TEST(UpdateTrace, ImmediateApplicationNarrative) {
  if (codeVersionModeForced())
    GTEST_SKIP() << "body-only bundle commits through the version chains under "
                    "JVOLVE_CODEVERSION=1 -- no safe-point protocol to assert";
  VM TheVM(smallConfig());
  TheVM.loadProgram(traceVersion(1, false));
  Updater U(TheVM);
  UpdateResult R =
      U.applyNow(Upt::prepare(traceVersion(1, false), traceVersion(2, false),
                              "v1"));
  ASSERT_EQ(R.Status, UpdateStatus::Applied);
  const UpdateTrace &T = R.Trace;
  EXPECT_EQ(T.count(UpdateEventKind::Scheduled), 1);
  EXPECT_EQ(T.count(UpdateEventKind::SafePointAttempt), 1);
  EXPECT_EQ(T.count(UpdateEventKind::BarrierArmed), 0);
  EXPECT_EQ(T.count(UpdateEventKind::ClassesInstalled), 1);
  EXPECT_EQ(T.count(UpdateEventKind::Applied), 1);
  // Events arrive in protocol order.
  ASSERT_GE(T.events().size(), 3u);
  EXPECT_EQ(T.events().front().Kind, UpdateEventKind::Scheduled);
  EXPECT_EQ(T.events().back().Kind, UpdateEventKind::Applied);
}

TEST(UpdateTrace, BarrierCycleRecorded) {
  if (codeVersionModeForced())
    GTEST_SKIP() << "body-only bundle commits through the version chains under "
                    "JVOLVE_CODEVERSION=1 -- no safe-point protocol to assert";
  VM TheVM(smallConfig());
  ClassSet V1 = traceVersion(1, false);
  ClassSet V2 = traceVersion(1000, false);
  TheVM.loadProgram(V1);
  TheVM.spawnThread("Svc", "loop", "()V", {}, "svc", true);
  TheVM.run(30); // park inside handle()

  Updater U(TheVM);
  UpdateResult R = U.applyNow(Upt::prepare(V1, V2, "v1"));
  ASSERT_EQ(R.Status, UpdateStatus::Applied);
  const UpdateTrace &T = R.Trace;
  EXPECT_GE(T.count(UpdateEventKind::BarrierArmed), 1);
  EXPECT_GE(T.count(UpdateEventKind::BarrierFired), 1);
  EXPECT_GE(T.count(UpdateEventKind::SafePointAttempt), 2);
  // The armed barrier names the restricted method and the thread.
  bool Named = false;
  for (const UpdateEvent &E : T.events())
    if (E.Kind == UpdateEventKind::BarrierArmed)
      Named = E.Detail.find("handle()V") != std::string::npos &&
              E.Detail.find("svc") != std::string::npos;
  EXPECT_TRUE(Named);
}

TEST(UpdateTrace, GcAndTransformPhasesRecorded) {
  VM TheVM(smallConfig());
  ClassSet V1 = traceVersion(1, false);
  ClassSet V2 = traceVersion(1, true); // class update (field change)
  TheVM.loadProgram(V1);
  // One live instance so the transformer phase has work.
  TheVM.pinnedRoots().push_back(
      TheVM.allocateObject(TheVM.registry().idOf("Svc")));

  Updater U(TheVM);
  UpdateResult R = U.applyNow(Upt::prepare(V1, V2, "v1"));
  ASSERT_EQ(R.Status, UpdateStatus::Applied);
  EXPECT_EQ(R.Trace.count(UpdateEventKind::GcCompleted), 1);
  EXPECT_EQ(R.Trace.count(UpdateEventKind::Transformed), 1);
  if (R.LazyInstalled) {
    // Lazy mode (e.g. JVOLVE_LAZY=1): the transform phase records only
    // the deferral; the shell count rides on the LazyCommitted event.
    EXPECT_EQ(R.Trace.count(UpdateEventKind::LazyCommitted), 1);
    for (const UpdateEvent &E : R.Trace.events()) {
      if (E.Kind == UpdateEventKind::LazyCommitted) {
        EXPECT_EQ(E.Value, 1);
      }
    }
  } else {
    for (const UpdateEvent &E : R.Trace.events()) {
      if (E.Kind == UpdateEventKind::Transformed) {
        EXPECT_EQ(E.Value, 1);
      }
    }
  }
  TheVM.pinnedRoots().clear();
}

TEST(UpdateTrace, TimeoutNarrative) {
  if (codeVersionModeForced())
    GTEST_SKIP() << "body-only bundle commits through the version chains under "
                    "JVOLVE_CODEVERSION=1 -- no safe-point protocol to assert";
  VM TheVM(smallConfig());
  ClassSet V1 = traceVersion(1, false);
  ClassSet V2 = traceVersion(1, false);
  // Change the infinite loop itself.
  V2.find("Svc")->findMethod("loop", "()V")->Code.push_back(
      {Opcode::Nop, 0, "", "", ""});
  TheVM.loadProgram(V1);
  TheVM.spawnThread("Svc", "loop", "()V", {}, "svc", true);
  TheVM.run(50);

  Updater U(TheVM);
  UpdateOptions Opts;
  Opts.TimeoutTicks = 20'000;
  UpdateResult R = U.applyNow(Upt::prepare(V1, V2, "v1"), Opts);
  ASSERT_EQ(R.Status, UpdateStatus::TimedOut);
  EXPECT_EQ(R.Trace.count(UpdateEventKind::TimedOut), 1);
  EXPECT_EQ(R.Trace.count(UpdateEventKind::Applied), 0);
  EXPECT_GE(R.Trace.count(UpdateEventKind::BarrierArmed), 1);
}

TEST(UpdateTrace, RejectionRecorded) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(traceVersion(1, false));
  ClassSet Broken;
  ClassBuilder CB("Svc");
  CB.staticMethod("handle", "()V").iconst(1).iret(); // int from void
  Broken.add(CB.build());
  Updater U(TheVM);
  UpdateResult R =
      U.applyNow(Upt::prepare(traceVersion(1, false), Broken, "v1"));
  EXPECT_EQ(R.Status, UpdateStatus::RejectedNotVerifiable);
  EXPECT_EQ(R.Trace.count(UpdateEventKind::Rejected), 1);
}

TEST(UpdateTrace, EveryEventKindNamedAndRoundTripsThroughSink) {
  // Every kind must render a non-empty name, and a trace containing one
  // event of each kind must survive the JSONL sink byte-for-byte.
  constexpr int NumKinds = static_cast<int>(UpdateEventKind::TimedOut) + 1;
  std::string Path =
      ::testing::TempDir() + "update_trace_roundtrip_test.jsonl";
  Telemetry &Tel = Telemetry::global();
  ASSERT_TRUE(Tel.openTrace(Path));

  UpdateTrace T;
  for (int K = 0; K < NumKinds; ++K) {
    UpdateEventKind Kind = static_cast<UpdateEventKind>(K);
    EXPECT_STRNE(updateEventKindName(Kind), "") << "kind " << K;
    T.record(Kind, /*Tick=*/100 + K, /*Value=*/K, "detail-" + std::to_string(K));
  }
  Tel.closeTrace();
  Tel.setEnabled(false);

  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::string Line;
  int K = 0;
  while (std::getline(In, Line)) {
    TraceEvent E;
    ASSERT_TRUE(TraceEvent::parseLine(Line, E)) << Line;
    EXPECT_EQ(E.Name, "dsu.update.event");
    EXPECT_EQ(E.Phase,
              updateEventKindName(static_cast<UpdateEventKind>(K)));
    EXPECT_EQ(E.StartTick, static_cast<uint64_t>(100 + K));
    EXPECT_EQ(E.Value, K);
    EXPECT_EQ(E.Detail, "detail-" + std::to_string(K));
    ++K;
  }
  EXPECT_EQ(K, NumKinds);
  std::remove(Path.c_str());
}

TEST(UpdateTrace, RendersReadableLog) {
  if (codeVersionModeForced())
    GTEST_SKIP() << "body-only bundle commits through the version chains under "
                    "JVOLVE_CODEVERSION=1 -- no safe-point protocol to assert";
  VM TheVM(smallConfig());
  TheVM.loadProgram(traceVersion(1, false));
  Updater U(TheVM);
  UpdateResult R =
      U.applyNow(Upt::prepare(traceVersion(1, false), traceVersion(3, false),
                              "v1"));
  ASSERT_EQ(R.Status, UpdateStatus::Applied);
  std::string Log = R.Trace.str();
  EXPECT_NE(Log.find("scheduled"), std::string::npos);
  EXPECT_NE(Log.find("safe-point-attempt"), std::string::npos);
  EXPECT_NE(Log.find("applied"), std::string::npos);
}
