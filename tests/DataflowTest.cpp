//===----------------------------------------------------------------------===//
///
/// \file
/// Dataflow-analysis tests: allocation-site tracking, virtual-dispatch
/// narrowing against the CHA fan-out, Top-receiver fallback,
/// entry-point-bounded reachability, checkcast site filtering, array
/// element flow, points-to widening under a site cap, and the
/// paramFieldFlows copy-chain evidence transformer synthesis consumes.
///
//===----------------------------------------------------------------------===//

#include "bytecode/Builder.h"
#include "bytecode/Builtins.h"
#include "dsu/Dataflow.h"

#include <gtest/gtest.h>

using namespace jvolve;

namespace {

/// Base.id() = 1, LeafA.id() = 2, LeafB.id() = 3: a three-way CHA fan-out
/// for the narrowing tests to shrink.
void addDispatchClasses(ClassSet &Set) {
  ClassBuilder B("Base");
  B.method("id", "()I").iconst(1).iret();
  Set.add(B.build());
  ClassBuilder A("LeafA", "Base");
  A.method("id", "()I").iconst(2).iret();
  Set.add(A.build());
  ClassBuilder L("LeafB", "Base");
  L.method("id", "()I").iconst(3).iret();
  Set.add(L.build());
}

/// Builds a set with the dispatch classes plus one caller class T whose
/// static method m has the given signature and body.
ClassSet callerSet(const std::string &Sig,
                   const std::function<void(MethodBuilder &)> &Fill,
                   const std::function<void(ClassSet &)> &Extra = nullptr) {
  ClassSet Set;
  addDispatchClasses(Set);
  if (Extra)
    Extra(Set);
  ClassBuilder CB("T");
  MethodBuilder &M = CB.staticMethod("m", Sig);
  Fill(M);
  Set.add(CB.build());
  ensureBuiltins(Set);
  return Set;
}

DataflowResult runOn(const ClassSet &Set, DataflowOptions Opts = {}) {
  DataflowAnalysis An(Set);
  return An.run(Opts);
}

} // namespace

TEST(Dataflow, RecordsAllocationSites) {
  ClassSet Set = callerSet("()V", [](MethodBuilder &M) {
    M.newobj("LeafA").pop().iconst(2).newarray("LBase;").pop().ret();
  });
  DataflowResult R = runOn(Set);

  bool SawObj = false, SawArr = false;
  for (const AllocSite &S : R.sites()) {
    if (S.Method == "T.m()V" && S.Pc == 0 && S.TypeName == "LeafA")
      SawObj = true;
    if (S.Method == "T.m()V" && S.Pc == 3 && S.TypeName == "[LBase;" &&
        S.ElemClass == "Base")
      SawArr = true;
  }
  EXPECT_TRUE(SawObj);
  EXPECT_TRUE(SawArr);
}

TEST(Dataflow, VirtualDispatchNarrowsToReceiverSites) {
  ClassSet Set = callerSet("()I", [](MethodBuilder &M) {
    M.newobj("LeafA").invokevirtual("Base", "id", "()I").iret();
  });
  DataflowResult R = runOn(Set);

  const std::set<std::string> *Callees = R.calleesAt("T.m()I", 1);
  ASSERT_NE(Callees, nullptr);
  EXPECT_EQ(*Callees, (std::set<std::string>{"LeafA.id()I"}));
  EXPECT_GE(R.virtualSites(), 1u);
  EXPECT_GE(R.sitesNarrowed(), 1u);

  bool Unknown = true;
  std::set<std::string> Recv = R.receiverClasses("T.m()I", 1, Unknown);
  EXPECT_FALSE(Unknown);
  EXPECT_EQ(Recv, (std::set<std::string>{"LeafA"}));
}

TEST(Dataflow, TopReceiverFallsBackToChaFanOut) {
  // m's receiver is an entry-point parameter: unknown provenance, so the
  // call must degrade to the full CHA target set, never past it.
  ClassSet Set = callerSet("(LBase;)I", [](MethodBuilder &M) {
    M.load(0).invokevirtual("Base", "id", "()I").iret();
  });
  DataflowOptions Opts;
  Opts.EntryPoints = {"T.m(LBase;)I"};
  DataflowResult R = runOn(Set, Opts);

  const std::set<std::string> *Callees = R.calleesAt("T.m(LBase;)I", 1);
  ASSERT_NE(Callees, nullptr);
  EXPECT_EQ(*Callees, (std::set<std::string>{"Base.id()I", "LeafA.id()I",
                                             "LeafB.id()I"}));
  bool Unknown = false;
  std::set<std::string> Recv = R.receiverClasses("T.m(LBase;)I", 1, Unknown);
  EXPECT_TRUE(Unknown);
  EXPECT_TRUE(Recv.empty());
}

TEST(Dataflow, ReachabilityStopsAtEntryPointFrontier) {
  ClassSet Set;
  addDispatchClasses(Set);
  ClassBuilder CB("T");
  CB.staticMethod("entry", "()V")
      .invokestatic("T", "called", "()V")
      .ret();
  CB.staticMethod("called", "()V").ret();
  CB.staticMethod("orphan", "()V").ret();
  Set.add(CB.build());
  ensureBuiltins(Set);

  DataflowOptions Opts;
  Opts.EntryPoints = {"T.entry()V"};
  DataflowResult R = runOn(Set, Opts);
  EXPECT_TRUE(R.reachableMethods().count("T.entry()V"));
  EXPECT_TRUE(R.reachableMethods().count("T.called()V"));
  EXPECT_FALSE(R.reachableMethods().count("T.orphan()V"));

  // No entry points: everything is analyzed, so everything is reachable.
  DataflowResult All = runOn(Set);
  EXPECT_TRUE(All.reachableMethods().count("T.orphan()V"));
}

TEST(Dataflow, CheckCastFiltersIncompatibleSites) {
  // Two sites merge at the join; the cast to LeafA proves the LeafB site
  // cannot reach the call on the fallthrough path.
  ClassSet Set = callerSet("(I)I", [](MethodBuilder &M) {
    M.load(0).branch(Opcode::IfEq, "other");
    M.newobj("LeafA").jump("join");
    M.label("other").newobj("LeafB");
    M.label("join")
        .checkcast("LeafA")
        .invokevirtual("Base", "id", "()I")
        .iret();
  });
  DataflowResult R = runOn(Set);

  const std::set<std::string> *Callees = R.calleesAt("T.m(I)I", 6);
  ASSERT_NE(Callees, nullptr);
  EXPECT_EQ(*Callees, (std::set<std::string>{"LeafA.id()I"}));
}

TEST(Dataflow, ArrayElementFlowReachesLoads) {
  // A LeafB stored into a tracked array resurfaces at the aload, so the
  // dispatch over the loaded element narrows to LeafB alone.
  ClassSet Set = callerSet("()I", [](MethodBuilder &M) {
    M.locals(1)
        .iconst(1)
        .newarray("LBase;")
        .store(0)
        .load(0)
        .iconst(0)
        .newobj("LeafB")
        .astore()
        .load(0)
        .iconst(0)
        .aload()
        .invokevirtual("Base", "id", "()I")
        .iret();
  });
  DataflowResult R = runOn(Set);

  const std::set<std::string> *Callees = R.calleesAt("T.m()I", 10);
  ASSERT_NE(Callees, nullptr);
  EXPECT_EQ(*Callees, (std::set<std::string>{"LeafB.id()I"}));
}

TEST(Dataflow, SiteCapWidensFieldToTop) {
  // Three distinct sites flow into H.f. Under the default cap the load
  // narrows to the two receiver classes; under a cap of two the value
  // collapses to Top and dispatch degrades to the CHA fan-out.
  auto Body = [](MethodBuilder &M) {
    M.locals(1).newobj("H").store(0);
    for (const char *Leaf : {"LeafA", "LeafA", "LeafB"})
      M.load(0).newobj(Leaf).putfield("H", "f", "LBase;");
    M.load(0)
        .getfield("H", "f", "LBase;")
        .invokevirtual("Base", "id", "()I")
        .iret();
  };
  auto AddHolder = [](ClassSet &Set) {
    ClassBuilder H("H");
    H.field("f", "LBase;");
    Set.add(H.build());
  };
  const size_t CallPc = 13;

  ClassSet Set = callerSet("()I", Body, AddHolder);
  DataflowResult Default = runOn(Set);
  const std::set<std::string> *Precise = Default.calleesAt("T.m()I", CallPc);
  ASSERT_NE(Precise, nullptr);
  EXPECT_EQ(*Precise, (std::set<std::string>{"LeafA.id()I", "LeafB.id()I"}));

  DataflowOptions Tight;
  Tight.MaxSitesPerValue = 2;
  DataflowResult R = runOn(Set, Tight);
  const std::set<std::string> *Widened = R.calleesAt("T.m()I", CallPc);
  ASSERT_NE(Widened, nullptr);
  EXPECT_EQ(*Widened, (std::set<std::string>{"Base.id()I", "LeafA.id()I",
                                             "LeafB.id()I"}));
  bool Unknown = false;
  R.receiverClasses("T.m()I", CallPc, Unknown);
  EXPECT_TRUE(Unknown);
}

TEST(Dataflow, ParamFieldFlowsTracksCopyChains) {
  ClassSet Set;
  addDispatchClasses(Set);
  ClassBuilder CB("P");
  CB.field("x", "I");
  CB.field("y", "I");
  CB.field("o", "LBase;");
  CB.field("w", "I");
  CB.field("z", "I");
  CB.method("<init>", "(IILBase;)V")
      .locals(5)
      .load(0)
      .load(1)
      .putfield("P", "x", "I")
      .load(0)
      .load(2)
      .putfield("P", "y", "I")
      .load(0)
      .load(3)
      .putfield("P", "o", "LBase;")
      .load(1)
      .store(4) // copy chain: param 1 -> local 4 -> field w
      .load(0)
      .load(4)
      .putfield("P", "w", "I")
      .load(0)
      .iconst(7)
      .putfield("P", "z", "I")
      .ret();
  Set.add(CB.build());
  ensureBuiltins(Set);

  const ClassDef &Cls = *Set.find("P");
  auto Flows = paramFieldFlows(Set, Cls, *Cls.findMethod("<init>"));
  ASSERT_TRUE(Flows.count("x"));
  EXPECT_EQ(Flows.at("x"), (std::set<uint16_t>{1}));
  ASSERT_TRUE(Flows.count("y"));
  EXPECT_EQ(Flows.at("y"), (std::set<uint16_t>{2}));
  ASSERT_TRUE(Flows.count("o"));
  EXPECT_EQ(Flows.at("o"), (std::set<uint16_t>{3}));
  ASSERT_TRUE(Flows.count("w"));
  EXPECT_EQ(Flows.at("w"), (std::set<uint16_t>{1}));
  // A constant store carries no parameter provenance.
  EXPECT_TRUE(!Flows.count("z") || Flows.at("z").empty());
}
