//===----------------------------------------------------------------------===//
///
/// \file
/// Transactional-update tests: every FaultInjector site plus the organic
/// failures they model must resolve to RolledBack / FailedTransformer /
/// TimedOut — never process death — with the heap certifying clean and the
/// old program version still serving correct answers afterwards. Also
/// covers retry-with-backoff for safe-point starvation and the
/// certification option.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "dsu/Transformers.h"
#include "dsu/Updater.h"
#include "dsu/Upt.h"
#include "heap/HeapVerifier.h"
#include "support/FaultInjector.h"
#include "support/Telemetry.h"
#include "support/TelemetryStream.h"

#include <cstdlib>
#include <gtest/gtest.h>

using namespace jvolve;
using namespace jvolve::test;

using Site = FaultInjector::Site;

namespace {

/// The transformer-failure tests assert the eager transactional contract:
/// transformers run *before* commit, so a fault rolls the whole update
/// back. Under JVOLVE_LAZY=1 transformers run after commit, where a fault
/// degrades the update instead (LazyTransformTest covers that policy).
bool lazyModeForced() { return std::getenv("JVOLVE_LAZY") != nullptr; }

/// True when \p S fires inside the transformer phase — post-commit in lazy
/// mode, so rollback assertions do not apply there.
bool isTransformerSite(Site S) {
  return S == Site::TransformerNthObject || S == Site::TransformerCycle ||
         S == Site::LazyDrainTransformer;
}

/// Point program with a probe present in both versions. v1: Point{x},
/// Probe.check() = p.x. v2: Point{x, y}, Probe.check() = p.x * 100 + p.y.
/// A rolled-back update must keep answering the v1 value.
ClassSet ptVersion(bool V2) {
  ClassSet Set;
  ClassBuilder P("Point");
  P.field("x", "I");
  if (V2)
    P.field("y", "I");
  Set.add(P.build());
  ClassBuilder H("Holder");
  H.staticField("p", "LPoint;");
  Set.add(H.build());
  ClassBuilder S("Setup");
  S.staticMethod("init", "(I)V")
      .locals(2)
      .newobj("Point")
      .store(1)
      .load(1)
      .load(0)
      .putfield("Point", "x", "I")
      .load(1)
      .putstatic("Holder", "p", "LPoint;")
      .ret();
  Set.add(S.build());
  ClassBuilder Pr("Probe");
  MethodBuilder &M = Pr.staticMethod("check", "()I");
  if (V2)
    M.getstatic("Holder", "p", "LPoint;")
        .getfield("Point", "x", "I")
        .iconst(100)
        .imul()
        .getstatic("Holder", "p", "LPoint;")
        .getfield("Point", "y", "I")
        .iadd()
        .iret();
  else
    M.getstatic("Holder", "p", "LPoint;")
        .getfield("Point", "x", "I")
        .iret();
  Set.add(Pr.build());
  return Set;
}

/// Array-of-points variant so per-object transformer faults can hit the
/// N-th object. v1 sum = 0+1+..+7 = 28; v2 sum = sum(x*10 + y) = 280.
ClassSet arrVersion(bool V2) {
  constexpr int N = 8;
  ClassSet Set;
  ClassBuilder P("Point");
  P.field("x", "I");
  if (V2)
    P.field("y", "I");
  Set.add(P.build());
  ClassBuilder H("ArrHolder");
  H.staticField("arr", "[LPoint;");
  Set.add(H.build());
  ClassBuilder S("ArrSetup");
  S.staticMethod("init", "()V")
      .locals(2)
      .iconst(N)
      .newarray("LPoint;")
      .putstatic("ArrHolder", "arr", "[LPoint;")
      .iconst(0)
      .store(0)
      .label("loop")
      .load(0)
      .iconst(N)
      .branch(Opcode::IfICmpGe, "done")
      .newobj("Point")
      .store(1)
      .load(1)
      .load(0)
      .putfield("Point", "x", "I")
      .getstatic("ArrHolder", "arr", "[LPoint;")
      .load(0)
      .load(1)
      .astore()
      .load(0)
      .iconst(1)
      .iadd()
      .store(0)
      .jump("loop")
      .label("done")
      .ret();
  Set.add(S.build());
  ClassBuilder Pr("ArrProbe");
  MethodBuilder &M = Pr.staticMethod("sum", "()I").locals(3);
  M.iconst(0)
      .store(0)
      .iconst(0)
      .store(1)
      .label("loop")
      .load(1)
      .iconst(N)
      .branch(Opcode::IfICmpGe, "done")
      .getstatic("ArrHolder", "arr", "[LPoint;")
      .load(1)
      .aload()
      .store(2)
      .load(0)
      .load(2)
      .getfield("Point", "x", "I");
  if (V2)
    M.iconst(10).imul().iadd().load(2).getfield("Point", "y", "I").iadd();
  else
    M.iadd();
  M.store(0)
      .load(1)
      .iconst(1)
      .iadd()
      .store(1)
      .jump("loop")
      .label("done")
      .load(0)
      .iret();
  Set.add(Pr.build());
  return Set;
}

/// Server with a sleeping handle() inside an endless loop() — the fixture
/// for safe-point-starvation tests (an update to handle() needs a return
/// barrier, so the safe point is only reached once handle() returns).
ClassSet serverVersion(int64_t HandleValue) {
  ClassSet Set;
  ClassBuilder S("Server");
  S.staticField("total", "I");
  S.staticMethod("handle", "()V")
      .iconst(40)
      .intrinsic(IntrinsicId::SleepTicks)
      .getstatic("Server", "total", "I")
      .iconst(HandleValue)
      .iadd()
      .putstatic("Server", "total", "I")
      .ret();
  S.staticMethod("loop", "()V")
      .label("top")
      .invokestatic("Server", "handle", "()V")
      .iconst(10)
      .intrinsic(IntrinsicId::SleepTicks)
      .jump("top");
  S.staticMethod("probeTotal", "()I")
      .getstatic("Server", "total", "I")
      .iret();
  Set.add(S.build());
  return Set;
}

/// Runs the full certification stack by hand (independent of the
/// updater's own post-update pass).
void expectHealthy(VM &TheVM, const char *Where) {
  HeapVerifier V(TheVM.heap(), TheVM.registry());
  std::vector<std::string> Problems = V.verify(
      [&TheVM](const std::function<void(Ref &)> &Visit) {
        TheVM.visitRoots(Visit);
      });
  EXPECT_TRUE(Problems.empty())
      << Where << ": " << (Problems.empty() ? "" : Problems.front());
  std::vector<std::string> Reg = TheVM.registry().checkConsistency();
  EXPECT_TRUE(Reg.empty()) << Where << ": " << (Reg.empty() ? "" : Reg.front());
}

/// Common assertions for any rolled-back update: certification ran clean,
/// the terminal trace event is the rollback, and the VM still certifies.
void expectRolledBackCleanly(VM &TheVM, const UpdateResult &R,
                             const char *Where) {
  EXPECT_TRUE(R.Certified) << Where;
  EXPECT_TRUE(R.CertificationProblems.empty())
      << Where << ": "
      << (R.CertificationProblems.empty() ? ""
                                          : R.CertificationProblems.front());
  ASSERT_FALSE(R.Trace.events().empty());
  EXPECT_EQ(R.Trace.events().back().Kind, UpdateEventKind::RolledBack);
  EXPECT_GE(R.Trace.count(UpdateEventKind::InstallFailed), 1);
  EXPECT_EQ(R.Trace.count(UpdateEventKind::Certified), 1);
  expectHealthy(TheVM, Where);
}

} // namespace

//===--- Site: class-load --------------------------------------------------===//

TEST(DsuRollback, ClassLoadFailureRollsBack) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(ptVersion(false));
  TheVM.callStatic("Setup", "init", "(I)V", {Slot::ofInt(9)});

  TheVM.faults().arm(Site::ClassLoad);
  Updater U(TheVM);
  UpdateResult R = U.applyNow(Upt::prepare(ptVersion(false), ptVersion(true), "v1"));
  EXPECT_EQ(R.Status, UpdateStatus::RolledBack);
  EXPECT_NE(R.Message.find("class-load"), std::string::npos) << R.Message;
  expectRolledBackCleanly(TheVM, R, "after class-load rollback");
  EXPECT_EQ(TheVM.callStatic("Probe", "check", "()I").IntVal, 9);

  // With the fault disarmed the very same update applies cleanly.
  TheVM.faults().reset();
  UpdateResult R2 = U.applyNow(Upt::prepare(ptVersion(false), ptVersion(true), "v1"));
  ASSERT_EQ(R2.Status, UpdateStatus::Applied) << R2.Message;
  EXPECT_EQ(TheVM.callStatic("Probe", "check", "()I").IntVal, 900);
}

//===--- Site: transformer-nth-object --------------------------------------===//

TEST(DsuRollback, TransformerFaultOnNthObjectRollsBack) {
  if (lazyModeForced())
    GTEST_SKIP() << "transformer faults degrade instead of rolling back "
                    "under JVOLVE_LAZY=1";
  VM TheVM(smallConfig());
  TheVM.loadProgram(arrVersion(false));
  TheVM.callStatic("ArrSetup", "init", "()V");
  EXPECT_EQ(TheVM.callStatic("ArrProbe", "sum", "()I").IntVal, 28);

  // Fail on the 4th transformed object: three Points are already done when
  // the transaction aborts, so rollback must undo partial progress.
  TheVM.faults().arm(Site::TransformerNthObject, /*Fire=*/1, /*Skip=*/3);
  Updater U(TheVM);
  UpdateResult R =
      U.applyNow(Upt::prepare(arrVersion(false), arrVersion(true), "v1"));
  EXPECT_EQ(R.Status, UpdateStatus::FailedTransformer);
  EXPECT_NE(R.Message.find("transform"), std::string::npos) << R.Message;
  expectRolledBackCleanly(TheVM, R, "after nth-object rollback");
  EXPECT_EQ(TheVM.callStatic("ArrProbe", "sum", "()I").IntVal, 28);

  TheVM.faults().reset();
  UpdateResult R2 =
      U.applyNow(Upt::prepare(arrVersion(false), arrVersion(true), "v1"));
  ASSERT_EQ(R2.Status, UpdateStatus::Applied) << R2.Message;
  EXPECT_EQ(R2.ObjectsTransformed, 8u);
  EXPECT_EQ(TheVM.callStatic("ArrProbe", "sum", "()I").IntVal, 280);
}

TEST(DsuRollback, ThrowingCustomTransformerRollsBack) {
  if (lazyModeForced())
    GTEST_SKIP() << "transformer faults degrade instead of rolling back "
                    "under JVOLVE_LAZY=1";
  VM TheVM(smallConfig());
  TheVM.loadProgram(ptVersion(false));
  TheVM.callStatic("Setup", "init", "(I)V", {Slot::ofInt(9)});

  UpdateBundle B = Upt::prepare(ptVersion(false), ptVersion(true), "v1");
  B.ObjectTransformers["Point"] = [](TransformCtx &Ctx, Ref, Ref From) {
    Ctx.getInt(From, "nope"); // no such field: UpdateError("transform")
  };
  Updater U(TheVM);
  UpdateResult R = U.applyNow(std::move(B));
  EXPECT_EQ(R.Status, UpdateStatus::FailedTransformer);
  expectRolledBackCleanly(TheVM, R, "after throwing transformer");
  EXPECT_EQ(TheVM.callStatic("Probe", "check", "()I").IntVal, 9);
}

//===--- Site: transformer-cycle -------------------------------------------===//

TEST(DsuRollback, InjectedTransformerCycleRollsBack) {
  if (lazyModeForced())
    GTEST_SKIP() << "transformer faults degrade instead of rolling back "
                    "under JVOLVE_LAZY=1";
  VM TheVM(smallConfig());
  TheVM.loadProgram(ptVersion(false));
  TheVM.callStatic("Setup", "init", "(I)V", {Slot::ofInt(9)});

  TheVM.faults().arm(Site::TransformerCycle);
  Updater U(TheVM);
  UpdateResult R = U.applyNow(Upt::prepare(ptVersion(false), ptVersion(true), "v1"));
  EXPECT_EQ(R.Status, UpdateStatus::FailedTransformer);
  EXPECT_NE(R.Message.find("cycle"), std::string::npos) << R.Message;
  expectRolledBackCleanly(TheVM, R, "after injected cycle");
  EXPECT_EQ(TheVM.callStatic("Probe", "check", "()I").IntVal, 9);
}

TEST(DsuRollback, RealTransformerCycleRollsBack) {
  if (lazyModeForced())
    GTEST_SKIP() << "transformer faults degrade instead of rolling back "
                    "under JVOLVE_LAZY=1";
  VM TheVM(smallConfig());
  TheVM.loadProgram(ptVersion(false));
  TheVM.callStatic("Setup", "init", "(I)V", {Slot::ofInt(9)});

  // An ill-defined transformer that demands its own target be transformed
  // first — the minimal genuine cycle (paper §3.4's "special VM function"
  // with cycle detection).
  UpdateBundle B = Upt::prepare(ptVersion(false), ptVersion(true), "v1");
  B.ObjectTransformers["Point"] = [](TransformCtx &Ctx, Ref To, Ref) {
    Ctx.ensureTransformed(To);
  };
  Updater U(TheVM);
  UpdateResult R = U.applyNow(std::move(B));
  EXPECT_EQ(R.Status, UpdateStatus::FailedTransformer);
  EXPECT_NE(R.Message.find("cycle"), std::string::npos) << R.Message;
  expectRolledBackCleanly(TheVM, R, "after real cycle");
  EXPECT_EQ(TheVM.callStatic("Probe", "check", "()I").IntVal, 9);
}

//===--- Site: lazy-drain-transformer ---------------------------------------===//

TEST(DsuRollback, LazyDrainFaultDegradesInsteadOfRollingBack) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(arrVersion(false));
  TheVM.callStatic("ArrSetup", "init", "()V");
  EXPECT_EQ(TheVM.callStatic("ArrProbe", "sum", "()I").IntVal, 28);

  // Fire on the 2nd background-drain transform. The update has already
  // committed when the fault hits, so rollback is impossible: the update
  // still resolves Applied, the failed shell settles as a valid zeroed
  // object, and the VM records a structured diagnostic instead of dying.
  TheVM.faults().arm(Site::LazyDrainTransformer, /*Fire=*/1, /*Skip=*/1);
  Updater U(TheVM);
  UpdateOptions Opts;
  Opts.LazyTransform = true;
  UpdateResult R =
      U.applyNow(Upt::prepare(arrVersion(false), arrVersion(true), "v1"), Opts);
  ASSERT_EQ(R.Status, UpdateStatus::Applied) << R.Message;
  EXPECT_TRUE(R.LazyInstalled);
  EXPECT_EQ(TheVM.faults().fireCount(Site::LazyDrainTransformer), 1u);
  EXPECT_EQ(R.ObjectsTransformed, 7u); // 8 shells, 1 settled as Failed
  ASSERT_EQ(TheVM.lazyFailureLog().size(), 1u);
  EXPECT_NE(TheVM.lazyFailureLog().front().find("lazy-drain"),
            std::string::npos)
      << TheVM.lazyFailureLog().front();

  // Seven of eight Points carry v2 values; the failed shell reads as
  // default-initialized (x contributes 0), so the v2 probe still runs —
  // degraded, not corrupt.
  int64_t Sum = TheVM.callStatic("ArrProbe", "sum", "()I").IntVal;
  EXPECT_GE(Sum, 210);
  EXPECT_LE(Sum, 280);
  expectHealthy(TheVM, "after degraded lazy drain");
}

//===--- Site: gc-alloc-exhaustion -----------------------------------------===//

TEST(DsuRollback, InjectedGcExhaustionRollsBack) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(ptVersion(false));
  TheVM.callStatic("Setup", "init", "(I)V", {Slot::ofInt(9)});

  TheVM.faults().arm(Site::GcAllocExhaustion);
  Updater U(TheVM);
  UpdateResult R = U.applyNow(Upt::prepare(ptVersion(false), ptVersion(true), "v1"));
  EXPECT_EQ(R.Status, UpdateStatus::RolledBack);
  EXPECT_NE(R.Message.find("dsu-gc"), std::string::npos) << R.Message;
  expectRolledBackCleanly(TheVM, R, "after injected gc exhaustion");
  EXPECT_EQ(TheVM.callStatic("Probe", "check", "()I").IntVal, 9);
}

TEST(DsuRollback, RealToSpaceExhaustionRollsBack) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(ptVersion(false));
  TheVM.callStatic("Setup", "init", "(I)V", {Slot::ofInt(9)});

  // Pin live Points until ~55% of a semispace is full. The DSU collection
  // needs a new-version copy (one int bigger) *plus* an old-version
  // duplicate per object — over 110% of the space — so it genuinely runs
  // out of to-space mid-collection, with no fault injection at all.
  ClassId PointId = TheVM.registry().idOf("Point");
  TransformCtx Ctx(TheVM, nullptr);
  size_t Budget = TheVM.heap().spaceBytes() * 55 / 100;
  size_t NumPinned = 0;
  while (TheVM.heap().bytesAllocated() < Budget) {
    Ref P = TheVM.allocateObject(PointId);
    ASSERT_NE(P, nullptr);
    Ctx.setInt(P, "x", 7);
    TheVM.pinnedRoots().push_back(P);
    ++NumPinned;
  }

  Updater U(TheVM);
  UpdateResult R = U.applyNow(Upt::prepare(ptVersion(false), ptVersion(true), "v1"));
  EXPECT_EQ(R.Status, UpdateStatus::RolledBack);
  EXPECT_NE(R.Message.find("dsu-gc"), std::string::npos) << R.Message;
  expectRolledBackCleanly(TheVM, R, "after real to-space exhaustion");

  // Old version intact: the static probe and every pinned object survived.
  EXPECT_EQ(TheVM.callStatic("Probe", "check", "()I").IntVal, 9);
  ASSERT_EQ(TheVM.pinnedRoots().size(), NumPinned);
  for (size_t I = 0; I < NumPinned; I += NumPinned / 16 + 1)
    EXPECT_EQ(Ctx.getInt(TheVM.pinnedRoots()[I], "x"), 7);
}

//===--- Site: safe-point-starvation ---------------------------------------===//

TEST(DsuRollback, TransientStarvationResolvesWithRetry) {
  if (codeVersionModeForced())
    GTEST_SKIP() << "body-only bundle commits through the version chains under "
                    "JVOLVE_CODEVERSION=1 -- no safe-point protocol to assert";
  ClassSet V1 = serverVersion(1);
  ClassSet V2 = serverVersion(1000);
  VM TheVM(smallConfig());
  TheVM.loadProgram(V1);
  TheVM.spawnThread("Server", "loop", "()V", {}, "server", /*Daemon=*/true);
  TheVM.run(20);

  // The first safe-point attempt is starved; the backoff re-attempt must
  // succeed and the update still applies.
  TheVM.faults().arm(Site::SafePointStarvation, /*Fire=*/1);
  Updater U(TheVM);
  UpdateOptions Opts;
  Opts.TimeoutTicks = 1'000'000;
  Opts.MaxRetries = 2;
  UpdateResult R = U.applyNow(Upt::prepare(V1, V2, "v1"), Opts);
  ASSERT_EQ(R.Status, UpdateStatus::Applied) << R.Message;
  EXPECT_GE(R.SafePointAttempts, 2);
  EXPECT_EQ(TheVM.faults().fireCount(Site::SafePointStarvation), 1u);
  expectHealthy(TheVM, "after starvation retry");

  int64_t Before = TheVM.callStatic("Server", "probeTotal", "()I").IntVal;
  TheVM.run(500);
  EXPECT_GE(TheVM.callStatic("Server", "probeTotal", "()I").IntVal - Before,
            1000);
}

TEST(DsuRollback, PersistentStarvationTimesOutAfterRetries) {
  if (codeVersionModeForced())
    GTEST_SKIP() << "body-only bundle commits through the version chains under "
                    "JVOLVE_CODEVERSION=1 -- no safe-point protocol to assert";
  ClassSet V1 = serverVersion(1);
  ClassSet V2 = serverVersion(1000);
  VM TheVM(smallConfig());
  TheVM.loadProgram(V1);
  TheVM.spawnThread("Server", "loop", "()V", {}, "server", /*Daemon=*/true);
  TheVM.run(20);

  // Every attempt is starved: the updater burns its MaxRetries deadline
  // extensions, then resolves TimedOut — not a crash, not a hang.
  TheVM.faults().arm(Site::SafePointStarvation, /*Fire=*/1'000'000);
  Updater U(TheVM);
  UpdateOptions Opts;
  Opts.TimeoutTicks = 20'000;
  Opts.MaxRetries = 2;
  UpdateResult R = U.applyNow(Upt::prepare(V1, V2, "v1"), Opts);
  EXPECT_EQ(R.Status, UpdateStatus::TimedOut);
  EXPECT_EQ(R.RetriesUsed, 2);
  EXPECT_EQ(R.Trace.count(UpdateEventKind::RetryScheduled), 2);
  expectHealthy(TheVM, "after persistent starvation");

  // The application is unharmed and still runs the old version.
  int64_t Before = TheVM.callStatic("Server", "probeTotal", "()I").IntVal;
  TheVM.run(500);
  EXPECT_GT(TheVM.callStatic("Server", "probeTotal", "()I").IntVal, Before);
}

TEST(DsuRollback, BackoffExtendsDeadlineUntilStarvationClears) {
  if (codeVersionModeForced())
    GTEST_SKIP() << "body-only bundle commits through the version chains under "
                    "JVOLVE_CODEVERSION=1 -- no safe-point protocol to assert";
  ClassSet V1 = serverVersion(1);
  ClassSet V2 = serverVersion(1000);
  VM TheVM(smallConfig());
  TheVM.loadProgram(V1);
  TheVM.spawnThread("Server", "loop", "()V", {}, "server", /*Daemon=*/true);
  TheVM.run(20);

  // Enough starved attempts to blow the base deadline, few enough that a
  // backoff-extended deadline reaches the safe point.
  TheVM.faults().arm(Site::SafePointStarvation, /*Fire=*/12);
  Updater U(TheVM);
  UpdateOptions Opts;
  Opts.TimeoutTicks = 20'000;
  Opts.MaxRetries = 3;
  Opts.BackoffFactor = 2.0;
  UpdateResult R = U.applyNow(Upt::prepare(V1, V2, "v1"), Opts);
  ASSERT_EQ(R.Status, UpdateStatus::Applied) << R.Message;
  EXPECT_GE(R.RetriesUsed, 1);
  EXPECT_GE(R.Trace.count(UpdateEventKind::RetryScheduled), 1);
  EXPECT_EQ(TheVM.faults().fireCount(Site::SafePointStarvation), 12u);
  expectHealthy(TheVM, "after backoff success");
}

//===--- Certification -----------------------------------------------------===//

TEST(DsuRollback, AppliedUpdateIsCertified) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(ptVersion(false));
  TheVM.callStatic("Setup", "init", "(I)V", {Slot::ofInt(9)});

  Updater U(TheVM);
  UpdateResult R = U.applyNow(Upt::prepare(ptVersion(false), ptVersion(true), "v1"));
  ASSERT_EQ(R.Status, UpdateStatus::Applied) << R.Message;
  EXPECT_TRUE(R.Certified);
  EXPECT_TRUE(R.CertificationProblems.empty());
  EXPECT_EQ(R.Trace.count(UpdateEventKind::Certified), 1);
  // Certification is part of the transaction: it precedes the terminal event.
  EXPECT_EQ(R.Trace.events().back().Kind, UpdateEventKind::Applied);
}

TEST(DsuRollback, CertificationCanBeSkipped) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(ptVersion(false));
  TheVM.callStatic("Setup", "init", "(I)V", {Slot::ofInt(9)});

  Updater U(TheVM);
  UpdateOptions Opts;
  Opts.CertifyAfterUpdate = false;
  UpdateResult R =
      U.applyNow(Upt::prepare(ptVersion(false), ptVersion(true), "v1"), Opts);
  ASSERT_EQ(R.Status, UpdateStatus::Applied) << R.Message;
  EXPECT_FALSE(R.Certified);
  EXPECT_EQ(R.CertifyMs, 0);
  EXPECT_EQ(R.Trace.count(UpdateEventKind::Certified), 0);
}

//===--- Acceptance sweep ---------------------------------------------------===//

TEST(DsuRollback, EveryFaultSiteResolvesWithoutProcessDeath) {
  for (size_t S = 0; S < FaultInjector::NumSites; ++S) {
    for (uint64_t Skip : {uint64_t(0), uint64_t(2)}) {
      Site Where = static_cast<Site>(S);
      if (lazyModeForced() && isTransformerSite(Where))
        continue; // post-commit under JVOLVE_LAZY=1: degrades, no rollback
      SCOPED_TRACE(std::string("site=") + FaultInjector::siteName(Where) +
                   " skip=" + std::to_string(Skip));

      VM TheVM(smallConfig());
      TheVM.loadProgram(ptVersion(false));
      TheVM.callStatic("Setup", "init", "(I)V", {Slot::ofInt(9)});
      TheVM.faults().arm(Where, /*Fire=*/1, Skip);

      Updater U(TheVM);
      UpdateOptions Opts;
      Opts.TimeoutTicks = 20'000;
      UpdateResult R =
          U.applyNow(Upt::prepare(ptVersion(false), ptVersion(true), "v1"), Opts);

      // Terminal, recoverable statuses only — and with a high Skip the
      // fault may simply never fire, which must mean a clean apply.
      // `bundle-truncated` rejects at ingest (RejectedNotVerifiable), the
      // clean-refusal analogue of a rollback.
      EXPECT_TRUE(R.Status == UpdateStatus::Applied ||
                  R.Status == UpdateStatus::RolledBack ||
                  R.Status == UpdateStatus::FailedTransformer ||
                  R.Status == UpdateStatus::TimedOut ||
                  R.Status == UpdateStatus::RejectedNotVerifiable)
          << updateStatusName(R.Status) << ": " << R.Message;

      expectHealthy(TheVM, "post-update certification");
      int64_t Expect = R.Status == UpdateStatus::Applied ? 900 : 9;
      EXPECT_EQ(TheVM.callStatic("Probe", "check", "()I").IntVal, Expect);

      // Whatever happened, the VM takes a clean retry of the same update.
      TheVM.faults().reset();
      UpdateResult R2 =
          U.applyNow(Upt::prepare(ptVersion(false), ptVersion(true),
                                  R.Status == UpdateStatus::Applied ? "v2" : "v1"),
                     Opts);
      if (R.Status != UpdateStatus::Applied) {
        ASSERT_EQ(R2.Status, UpdateStatus::Applied) << R2.Message;
        EXPECT_EQ(TheVM.callStatic("Probe", "check", "()I").IntVal, 900);
      }
    }
  }
}

//===--- Second-order faults (fault inside the rollback) -------------------===//

/// A telemetry writer stall firing at the rollback's markPhase must not
/// change the rollback's outcome, and the streaming ledger must still
/// balance once the durability flush runs: attempted == streamed + dropped.
TEST(DsuRollback, WriterStallDuringRollbackKeepsLedgerBalanced) {
  if (lazyModeForced())
    GTEST_SKIP() << "the trigger (transformer fault) degrades instead of "
                    "rolling back under JVOLVE_LAZY=1";
  Telemetry::global().setEnabled(true);
  TelemetrySessionConfig Cfg;
  Cfg.Name = "rollback-stall";
  auto Session = Telemetry::global().streamer().openSession(Cfg);

  // Recording pass: the trigger alone, counting telemetry-writer-stall
  // probes before and after its first firing — the rollback window.
  VM Rec(smallConfig());
  Rec.loadProgram(ptVersion(false));
  Rec.callStatic("Setup", "init", "(I)V", {Slot::ofInt(9)});
  Rec.faults().arm(Site::TransformerNthObject);
  UpdateResult RecR = Updater(Rec).applyNow(
      Upt::prepare(ptVersion(false), ptVersion(true), "v1"));
  ASSERT_EQ(RecR.Status, UpdateStatus::FailedTransformer) << RecR.Message;
  size_t Stall = static_cast<size_t>(Site::TelemetryWriterStall);
  uint64_t Lo = Rec.faults().probesAtFirstFire()[Stall];
  uint64_t Hi = Rec.faults().probeCounts()[Stall];
  ASSERT_GT(Hi, Lo) << "rollback path never probes the writer-stall site";

  // Aimed pass: same trigger, plus the stall at every rollback-window
  // probe index.
  for (uint64_t Skip = Lo; Skip < Hi; ++Skip) {
    SCOPED_TRACE("skip=" + std::to_string(Skip));
    VM TheVM(smallConfig());
    TheVM.loadProgram(ptVersion(false));
    TheVM.callStatic("Setup", "init", "(I)V", {Slot::ofInt(9)});
    TheVM.faults().arm(Site::TransformerNthObject);
    TheVM.faults().arm(Site::TelemetryWriterStall, /*Fire=*/1, Skip);
    UpdateResult R = Updater(TheVM).applyNow(
        Upt::prepare(ptVersion(false), ptVersion(true), "v1"));
    EXPECT_EQ(R.Status, UpdateStatus::FailedTransformer) << R.Message;
    EXPECT_GT(TheVM.faults().fireCounts()[Stall], 0u);
    expectRolledBackCleanly(TheVM, R, "after stalled rollback");
    EXPECT_EQ(TheVM.callStatic("Probe", "check", "()I").IntVal, 9);
  }

  TelemetryStreamer &St = Telemetry::global().streamer();
  St.flushAll();
  EXPECT_EQ(St.attemptedTotal(), St.streamedTotal() + St.droppedTotal());
  St.closeSession(Session);
}

/// A second fault landing inside the rollback itself (the nested-fault
/// path Updater::install hardens) must still resolve to the rollback's
/// terminal status with the old version serving — never process death or
/// a stuck transaction.
TEST(DsuRollback, NestedFaultDuringRollbackStillTerminates) {
  if (lazyModeForced())
    GTEST_SKIP() << "the trigger (transformer fault) degrades instead of "
                    "rolling back under JVOLVE_LAZY=1";
  // Recording pass for each candidate nested site: how many probes land
  // after the trigger fires (i.e. inside rollback + certification).
  VM Rec(smallConfig());
  Rec.loadProgram(arrVersion(false));
  Rec.callStatic("ArrSetup", "init", "()V");
  Rec.faults().arm(Site::TransformerNthObject, /*Fire=*/1, /*Skip=*/3);
  UpdateResult RecR = Updater(Rec).applyNow(
      Upt::prepare(arrVersion(false), arrVersion(true), "v1"));
  ASSERT_EQ(RecR.Status, UpdateStatus::FailedTransformer) << RecR.Message;

  for (Site Nested : {Site::HeapAllocNth, Site::GcAllocExhaustion}) {
    size_t I = static_cast<size_t>(Nested);
    uint64_t Lo = Rec.faults().probesAtFirstFire()[I];
    uint64_t Hi = Rec.faults().probeCounts()[I];
    for (uint64_t Skip = Lo; Skip < Hi; ++Skip) {
      SCOPED_TRACE(std::string("nested=") + FaultInjector::siteName(Nested) +
                   " skip=" + std::to_string(Skip));
      VM TheVM(smallConfig());
      TheVM.loadProgram(arrVersion(false));
      TheVM.callStatic("ArrSetup", "init", "()V");
      TheVM.faults().arm(Site::TransformerNthObject, /*Fire=*/1, /*Skip=*/3);
      TheVM.faults().arm(Nested, /*Fire=*/1, Skip);
      UpdateResult R = Updater(TheVM).applyNow(
          Upt::prepare(arrVersion(false), arrVersion(true), "v1"));
      // The nested fault may skip certification, but the status must be
      // the rollback family and the old version must still answer.
      EXPECT_TRUE(R.Status == UpdateStatus::FailedTransformer ||
                  R.Status == UpdateStatus::RolledBack)
          << updateStatusName(R.Status) << ": " << R.Message;
      EXPECT_EQ(TheVM.callStatic("ArrProbe", "sum", "()I").IntVal, 28);
      expectHealthy(TheVM, "after nested-fault rollback");
    }
  }
}
