//===----------------------------------------------------------------------===//
///
/// \file
/// Garbage-collector tests: survival across collections, identity
/// preservation under forwarding, root coverage (statics, stacks, pinned
/// handles), and allocation-triggered collection.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "dsu/Updater.h"
#include "dsu/Upt.h"
#include "runtime/ObjectModel.h"

#include <gtest/gtest.h>

using namespace jvolve;
using namespace jvolve::test;

namespace {

/// Node class for building linked structures: { int v; Node next; }.
ClassSet nodeProgram() {
  ClassSet Set;
  ClassBuilder CB("Node");
  CB.field("v", "I");
  CB.field("next", "LNode;");
  Set.add(CB.build());
  ClassBuilder Holder("Holder");
  Holder.staticField("root", "LNode;");
  Set.add(Holder.build());
  ClassBuilder Main("Main");
  Main.staticMethod("noop", "()V").ret();
  Set.add(Main.build());
  return Set;
}

Ref allocNode(VM &TheVM, int64_t V, Ref Next) {
  ClassId Cls = TheVM.registry().idOf("Node");
  Ref Obj = TheVM.allocateObject(Cls);
  const RtClass &C = TheVM.registry().cls(Cls);
  setIntAt(Obj, C.findInstanceField("v")->Offset, V);
  setRefAt(Obj, C.findInstanceField("next")->Offset, Next);
  return Obj;
}

int64_t nodeValue(VM &TheVM, Ref Obj) {
  const RtClass &C = TheVM.registry().cls(classOf(Obj));
  return getIntAt(Obj, C.findInstanceField("v")->Offset);
}

Ref nodeNext(VM &TheVM, Ref Obj) {
  const RtClass &C = TheVM.registry().cls(classOf(Obj));
  return getRefAt(Obj, C.findInstanceField("next")->Offset);
}

Slot &staticRoot(VM &TheVM) {
  ClassId Holder = TheVM.registry().idOf("Holder");
  RtClass &C = TheVM.registry().cls(Holder);
  return C.Statics[C.findStaticField("root")->Offset];
}

} // namespace

TEST(Gc, LiveChainSurvivesCollection) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(nodeProgram());

  // Build a 100-node chain rooted in a static.
  Ref Chain = nullptr;
  for (int I = 0; I < 100; ++I)
    Chain = allocNode(TheVM, I, Chain);
  staticRoot(TheVM) = Slot::ofRef(Chain);

  CollectionStats St = TheVM.collectGarbage();
  EXPECT_GE(St.ObjectsCopied, 100u);

  // Walk the (moved) chain: values 99..0.
  Ref Cur = staticRoot(TheVM).RefVal;
  for (int I = 99; I >= 0; --I) {
    ASSERT_NE(Cur, nullptr);
    EXPECT_EQ(nodeValue(TheVM, Cur), I);
    Cur = nodeNext(TheVM, Cur);
  }
  EXPECT_EQ(Cur, nullptr);
}

TEST(Gc, GarbageIsReclaimed) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(nodeProgram());

  for (int I = 0; I < 1000; ++I)
    allocNode(TheVM, I, nullptr); // all garbage
  size_t Before = TheVM.heap().bytesAllocated();
  CollectionStats St = TheVM.collectGarbage();
  EXPECT_EQ(St.ObjectsCopied, 0u);
  EXPECT_LT(TheVM.heap().bytesAllocated(), Before);
}

TEST(Gc, AliasingPreservedUnderForwarding) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(nodeProgram());

  Ref Shared = allocNode(TheVM, 7, nullptr);
  Ref A = allocNode(TheVM, 1, Shared);
  Ref B = allocNode(TheVM, 2, Shared);
  staticRoot(TheVM) = Slot::ofRef(A);
  TheVM.pinnedRoots().push_back(B);

  TheVM.collectGarbage();

  Ref NewA = staticRoot(TheVM).RefVal;
  Ref NewB = TheVM.pinnedRoots().back();
  ASSERT_NE(NewA, nullptr);
  ASSERT_NE(NewB, nullptr);
  // Both parents still point at the *same* moved child.
  EXPECT_EQ(nodeNext(TheVM, NewA), nodeNext(TheVM, NewB));
  EXPECT_EQ(nodeValue(TheVM, nodeNext(TheVM, NewA)), 7);
  TheVM.pinnedRoots().clear();
}

TEST(Gc, RefArraysAreTraced) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(nodeProgram());

  ClassId ArrCls = TheVM.registry().arrayClassOf(Type::refTy("Node"));
  Ref Arr = TheVM.allocateArray(ArrCls, 10);
  for (int64_t I = 0; I < 10; ++I)
    setRefAt(Arr, arrayElemOffset(I), allocNode(TheVM, I * 11, nullptr));
  TheVM.pinnedRoots().push_back(Arr);

  TheVM.collectGarbage();

  Ref Moved = TheVM.pinnedRoots().back();
  ASSERT_EQ(arrayLength(Moved), 10);
  for (int64_t I = 0; I < 10; ++I) {
    Ref Elem = getRefAt(Moved, arrayElemOffset(I));
    ASSERT_NE(Elem, nullptr);
    EXPECT_EQ(nodeValue(TheVM, Elem), I * 11);
  }
  TheVM.pinnedRoots().clear();
}

TEST(Gc, AllocationTriggersCollection) {
  VM::Config C = smallConfig();
  C.HeapSpaceBytes = 256 << 10;
  VM TheVM(C);
  TheVM.loadProgram(nodeProgram());

  // Keep one small live object; churn through many dead ones. Allocation
  // pressure must trigger collections automatically.
  staticRoot(TheVM) = Slot::ofRef(allocNode(TheVM, 42, nullptr));
  for (int I = 0; I < 100'000; ++I)
    ASSERT_NE(allocNode(TheVM, I, nullptr), nullptr);
  EXPECT_GT(TheVM.stats().Collections, 0u);
  EXPECT_EQ(nodeValue(TheVM, staticRoot(TheVM).RefVal), 42);
}

TEST(Gc, ThreadStackRootsAreScanned) {
  // A bytecode loop keeps a chain in a local while allocating garbage; the
  // collection triggered by allocation must keep the local alive.
  ClassSet Set = nodeProgram();
  {
    ClassBuilder CB("Churn");
    MethodBuilder &M = CB.staticMethod("run", "()I");
    M.locals(3);
    // live = new Node{v: 5}
    M.newobj("Node").store(0);
    M.load(0).iconst(5).putfield("Node", "v", "I");
    // for (i = 0; i < 50000; i++) new Node();
    M.iconst(0).store(1);
    M.label("loop");
    M.load(1).iconst(50000).branch(Opcode::IfICmpGe, "done");
    M.newobj("Node").store(2);
    M.load(1).iconst(1).iadd().store(1);
    M.jump("loop");
    M.label("done");
    M.load(0).getfield("Node", "v", "I").iret();
  Set.add(CB.build());
  }
  VM::Config C = smallConfig();
  C.HeapSpaceBytes = 128 << 10;
  VM TheVM(C);
  TheVM.loadProgram(Set);
  EXPECT_EQ(TheVM.callStatic("Churn", "run", "()I").IntVal, 5);
  EXPECT_GT(TheVM.stats().Collections, 0u);
}

TEST(Gc, OldCopySpaceExhaustionRollsBackAndRetryWorks) {
  // §3.5: the old-copy block is normally reserved at the worst case (the
  // whole live heap) and can never overflow. An explicit undersized cap
  // makes the exhaustion path reachable; the DSU collection must abort
  // with a *recoverable* error, roll the update back, and leave the heap
  // exactly as it was so an uncapped retry succeeds.
  VM TheVM(smallConfig());
  TheVM.loadProgram(nodeProgram());

  Ref Chain = nullptr;
  for (int I = 0; I < 200; ++I)
    Chain = allocNode(TheVM, I, Chain);
  staticRoot(TheVM) = Slot::ofRef(Chain);

  ClassSet V2 = nodeProgram();
  V2.find("Node")->Fields.push_back(
      {"w", "I", false, false, Access::Public});

  auto expectChainIntact = [&TheVM](const char *When) {
    Ref Cur = staticRoot(TheVM).RefVal;
    for (int I = 199; I >= 0; --I) {
      ASSERT_NE(Cur, nullptr) << When;
      EXPECT_EQ(nodeValue(TheVM, Cur), I) << When;
      Cur = nodeNext(TheVM, Cur);
    }
    EXPECT_EQ(Cur, nullptr) << When;
  };

  // 200 duplicated Nodes need far more than 256 bytes of old-copy space.
  Updater U(TheVM);
  UpdateOptions Opts;
  Opts.UseOldCopySpace = true;
  Opts.OldCopyReserveLimitBytes = 256;
  UpdateResult R =
      U.applyNow(Upt::prepare(nodeProgram(), V2, "v-cramped"), Opts);
  EXPECT_EQ(R.Status, UpdateStatus::RolledBack) << R.Message;
  EXPECT_NE(R.Message.find("old-copy"), std::string::npos) << R.Message;
  EXPECT_FALSE(TheVM.heap().hasOldCopySpace());
  expectChainIntact("after rolled-back update");

  // Uncapped (0 = worst case) the same update goes through.
  Opts.OldCopyReserveLimitBytes = 0;
  UpdateResult R2 =
      U.applyNow(Upt::prepare(nodeProgram(), V2, "v-roomy"), Opts);
  ASSERT_EQ(R2.Status, UpdateStatus::Applied) << R2.Message;
  EXPECT_FALSE(TheVM.heap().hasOldCopySpace());
  expectChainIntact("after applied retry");
  // The added field defaults to zero on every transformed Node.
  const RtClass &C =
      TheVM.registry().cls(classOf(staticRoot(TheVM).RefVal));
  EXPECT_EQ(getIntAt(staticRoot(TheVM).RefVal,
                     C.findInstanceField("w")->Offset),
            0);
}

TEST(Gc, StringsSurviveCollection) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(nodeProgram());
  Ref S = TheVM.newString("persistent payload");
  TheVM.pinnedRoots().push_back(S);
  TheVM.collectGarbage();
  EXPECT_EQ(TheVM.stringValue(TheVM.pinnedRoots().back()),
            "persistent payload");
  TheVM.pinnedRoots().clear();
}
