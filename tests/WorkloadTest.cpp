//===----------------------------------------------------------------------===//
///
/// \file
/// Load-driver tests: the httperf-equivalent measures what it should —
/// responses, throughput, latency quantiles — deterministically under a
/// fixed seed, with jitter producing controlled run-to-run variation.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "apps/JettyApp.h"
#include "apps/Workload.h"

#include <gtest/gtest.h>

using namespace jvolve;
using namespace jvolve::test;

namespace {

std::unique_ptr<VM> bootJetty(const AppModel &App) {
  VM::Config Cfg;
  Cfg.HeapSpaceBytes = 8u << 20;
  auto TheVM = std::make_unique<VM>(Cfg);
  TheVM->loadProgram(App.version(0));
  startJettyThreads(*TheVM);
  return TheVM;
}

} // namespace

TEST(Workload, MeasuresResponsesAndThroughput) {
  AppModel App = makeJettyApp();
  std::unique_ptr<VM> TheVM = bootJetty(App);
  LoadDriver::Options LO;
  LO.Port = JettyPort;
  LoadDriver Driver(*TheVM, LO);
  LoadResult R = Driver.measure(15'000);
  EXPECT_GT(R.Responses, 0u);
  EXPECT_GT(R.Ticks, 0u);
  EXPECT_NEAR(R.Throughput,
              1000.0 * static_cast<double>(R.Responses) /
                  static_cast<double>(R.Ticks),
              1e-9);
  EXPECT_GT(R.LatencyTicks.Median, 0.0);
  EXPECT_LE(R.LatencyTicks.LowerQuartile, R.LatencyTicks.Median);
  EXPECT_LE(R.LatencyTicks.Median, R.LatencyTicks.UpperQuartile);
}

TEST(Workload, DeterministicUnderFixedSeed) {
  AppModel App = makeJettyApp();
  uint64_t Responses[2];
  for (int Trial = 0; Trial < 2; ++Trial) {
    std::unique_ptr<VM> TheVM = bootJetty(App);
    LoadDriver::Options LO;
    LO.Port = JettyPort;
    LO.JitterTicks = 10;
    LO.Seed = 42;
    LoadDriver Driver(*TheVM, LO);
    Responses[Trial] = Driver.measure(15'000).Responses;
  }
  EXPECT_EQ(Responses[0], Responses[1]);
}

TEST(Workload, JitterVariesRuns) {
  // The offered load is open-loop (batches arrive on schedule), so the
  // response *count* is schedule-determined; jitter perturbs arrival
  // overlap and therefore the latency distribution across runs.
  AppModel App = makeJettyApp();
  std::set<std::string> Distinct;
  for (uint64_t Seed = 1; Seed <= 5; ++Seed) {
    std::unique_ptr<VM> TheVM = bootJetty(App);
    LoadDriver::Options LO;
    LO.Port = JettyPort;
    LO.ConnectionsPerBatch = 2;
    LO.BatchInterval = 140; // near capacity: queueing amplifies jitter
    LO.JitterTicks = 40;
    LO.Seed = Seed;
    LoadDriver Driver(*TheVM, LO);
    LoadResult R = Driver.measure(15'000);
    Distinct.insert(std::to_string(R.Responses) + "/" +
                    std::to_string(R.LatencyTicks.Median) + "/" +
                    std::to_string(R.LatencyTicks.UpperQuartile));
  }
  EXPECT_GT(Distinct.size(), 1u);
}

TEST(Workload, RunWithLoadKeepsServerBusy) {
  AppModel App = makeJettyApp();
  std::unique_ptr<VM> TheVM = bootJetty(App);
  LoadDriver::Options LO;
  LO.Port = JettyPort;
  LoadDriver Driver(*TheVM, LO);
  Driver.runWithLoad(10'000);
  EXPECT_GT(TheVM->callStatic("Stats", "served", "()I").IntVal, 0);
}

TEST(Workload, RunIdleDrainsWithoutNewLoad) {
  AppModel App = makeJettyApp();
  std::unique_ptr<VM> TheVM = bootJetty(App);
  LoadDriver::Options LO;
  LO.Port = JettyPort;
  LoadDriver Driver(*TheVM, LO);
  Driver.runWithLoad(5'000);
  uint64_t Before = TheVM->net().totalConnections();
  Driver.runIdle(5'000);
  EXPECT_EQ(TheVM->net().totalConnections(), Before);
}

TEST(Workload, HigherOfferedLoadMoreResponsesBelowSaturation) {
  AppModel App = makeJettyApp();
  uint64_t Slow, Fast;
  {
    std::unique_ptr<VM> TheVM = bootJetty(App);
    LoadDriver::Options LO;
    LO.Port = JettyPort;
    LO.ConnectionsPerBatch = 1;
    LO.BatchInterval = 600;
    Slow = LoadDriver(*TheVM, LO).measure(30'000).Responses;
  }
  {
    std::unique_ptr<VM> TheVM = bootJetty(App);
    LoadDriver::Options LO;
    LO.Port = JettyPort;
    LO.ConnectionsPerBatch = 1;
    LO.BatchInterval = 300;
    Fast = LoadDriver(*TheVM, LO).measure(30'000).Responses;
  }
  EXPECT_GT(Fast, Slow);
}
