//===----------------------------------------------------------------------===//
///
/// \file
/// Update Preparation Tool tests: change categorization (class updates vs
/// method-body updates vs indirect methods), the transitive subclass
/// closure, removed-method tracking, and the Tables 2-4 summary counters
/// (including the field-type-change = add+del convention and
/// signature-change pairing).
///
//===----------------------------------------------------------------------===//

#include "bytecode/Builder.h"
#include "dsu/Upt.h"

#include <gtest/gtest.h>

using namespace jvolve;

namespace {

ClassSet baseSet() {
  ClassSet Set;
  ClassBuilder U("User");
  U.field("name", "LString;");
  U.field("age", "I");
  U.method("getAge", "()I").load(0).getfield("User", "age", "I").iret();
  U.method("setAge", "(I)V")
      .load(0)
      .load(1)
      .putfield("User", "age", "I")
      .ret();
  Set.add(U.build());
  ClassBuilder M("Manager");
  M.staticMethod("check", "(LUser;)I")
      .load(0)
      .invokevirtual("User", "getAge", "()I")
      .iret();
  Set.add(M.build());
  ClassBuilder Other("Standalone");
  Other.staticMethod("pure", "()I").iconst(1).iret();
  Set.add(Other.build());
  return Set;
}

bool contains(const std::vector<std::string> &V, const std::string &S) {
  for (const std::string &X : V)
    if (X == S)
      return true;
  return false;
}

bool containsRef(const std::vector<MethodRef> &V, const std::string &Cls,
                 const std::string &Name) {
  for (const MethodRef &R : V)
    if (R.ClassName == Cls && R.Name == Name)
      return true;
  return false;
}

} // namespace

TEST(Upt, IdenticalVersionsProduceEmptySpec) {
  UpdateSpec S = Upt::computeSpec(baseSet(), baseSet());
  EXPECT_TRUE(S.empty());
  EXPECT_EQ(S.Summary.ClassesChanged, 0);
}

TEST(Upt, MethodBodyChangeIsNotAClassUpdate) {
  ClassSet V2 = baseSet();
  V2.find("User")->findMethod("getAge", "()I")->Code.push_back(
      {Opcode::Nop, 0, "", "", ""});
  UpdateSpec S = Upt::computeSpec(baseSet(), V2);
  EXPECT_TRUE(S.ClassUpdates.empty());
  ASSERT_EQ(S.MethodBodyUpdates.size(), 1u);
  EXPECT_EQ(S.MethodBodyUpdates[0].key(), "User.getAge()I");
  EXPECT_EQ(S.Summary.MethodsBodyChanged, 1);
  EXPECT_EQ(S.Summary.ClassesChanged, 1);
}

TEST(Upt, FieldAdditionIsAClassUpdate) {
  ClassSet V2 = baseSet();
  V2.find("User")->Fields.push_back({"email", "LString;", false, false,
                                     Access::Public});
  UpdateSpec S = Upt::computeSpec(baseSet(), V2);
  EXPECT_TRUE(contains(S.ClassUpdates, "User"));
  EXPECT_EQ(S.Summary.FieldsAdded, 1);
  EXPECT_EQ(S.Summary.FieldsDeleted, 0);
}

TEST(Upt, FieldTypeChangeCountsAsDeletePlusAdd) {
  // The Figure 2 convention: String[] -> EmailAddress[] appears as one
  // deletion plus one addition in the table counters.
  ClassSet V2 = baseSet();
  for (FieldDef &F : V2.find("User")->Fields)
    if (F.Name == "name")
      F.TypeDesc = "I";
  UpdateSpec S = Upt::computeSpec(baseSet(), V2);
  EXPECT_TRUE(contains(S.ClassUpdates, "User"));
  EXPECT_EQ(S.Summary.FieldsAdded, 1);
  EXPECT_EQ(S.Summary.FieldsDeleted, 1);
}

TEST(Upt, FieldModifierChangeIsAClassUpdateButNotCounted) {
  ClassSet V2 = baseSet();
  for (FieldDef &F : V2.find("User")->Fields)
    if (F.Name == "age")
      F.Visibility = Access::Private;
  UpdateSpec S = Upt::computeSpec(baseSet(), V2);
  EXPECT_TRUE(contains(S.ClassUpdates, "User"));
  EXPECT_EQ(S.Summary.FieldsAdded, 0);
  EXPECT_EQ(S.Summary.FieldsDeleted, 0);
  EXPECT_EQ(S.Summary.FieldsModifierChanged, 1);
}

TEST(Upt, FieldReorderIsAClassUpdate) {
  ClassSet V2 = baseSet();
  std::swap(V2.find("User")->Fields[0], V2.find("User")->Fields[1]);
  UpdateSpec S = Upt::computeSpec(baseSet(), V2);
  EXPECT_TRUE(contains(S.ClassUpdates, "User"));
}

TEST(Upt, SignatureChangePairsByName) {
  ClassSet V2 = baseSet();
  MethodDef *SetAge = V2.find("User")->findMethod("setAge");
  SetAge->Sig = "(II)V";
  SetAge->NumLocals = 3;
  // Keep it verifiable-ish; code unchanged is fine for the diff.
  UpdateSpec S = Upt::computeSpec(baseSet(), V2);
  EXPECT_EQ(S.Summary.MethodsSigChanged, 1);
  EXPECT_EQ(S.Summary.MethodsAdded, 0);
  EXPECT_EQ(S.Summary.MethodsDeleted, 0);
  EXPECT_TRUE(contains(S.ClassUpdates, "User"));
  // The old-signature method no longer exists: it is a removed (and thus
  // restricted) method.
  EXPECT_TRUE(containsRef(S.RemovedMethods, "User", "setAge"));
}

TEST(Upt, MethodAddAndDeleteCounted) {
  ClassSet V2 = baseSet();
  MethodBuilder MB("fresh", "()I", false);
  MB.iconst(1).iret();
  V2.find("User")->Methods.push_back(MB.build());
  std::erase_if(V2.find("Standalone")->Methods,
                [](const MethodDef &M) { return M.Name == "pure"; });
  UpdateSpec S = Upt::computeSpec(baseSet(), V2);
  EXPECT_EQ(S.Summary.MethodsAdded, 1);
  EXPECT_EQ(S.Summary.MethodsDeleted, 1);
  EXPECT_TRUE(contains(S.ClassUpdates, "User"));
  EXPECT_TRUE(contains(S.ClassUpdates, "Standalone"));
  EXPECT_TRUE(containsRef(S.RemovedMethods, "Standalone", "pure"));
}

TEST(Upt, ClassAddAndDelete) {
  ClassSet V2 = baseSet();
  V2.remove("Standalone");
  V2.add(ClassBuilder("Fresh").build());
  UpdateSpec S = Upt::computeSpec(baseSet(), V2);
  ASSERT_EQ(S.AddedClasses.size(), 1u);
  EXPECT_EQ(S.AddedClasses[0], "Fresh");
  ASSERT_EQ(S.DeletedClasses.size(), 1u);
  EXPECT_EQ(S.DeletedClasses[0], "Standalone");
  // All methods of a deleted class are restricted.
  EXPECT_TRUE(containsRef(S.RemovedMethods, "Standalone", "pure"));
}

TEST(Upt, IndirectMethodsReferenceUpdatedClasses) {
  ClassSet V2 = baseSet();
  V2.find("User")->Fields.push_back({"email", "LString;", false, false,
                                     Access::Public});
  UpdateSpec S = Upt::computeSpec(baseSet(), V2);
  // Manager.check's bytecode is unchanged but calls into User, whose
  // compiled representation changes: category (2).
  EXPECT_TRUE(containsRef(S.IndirectMethods, "Manager", "check"));
  // Standalone.pure references nothing updated.
  EXPECT_FALSE(containsRef(S.IndirectMethods, "Standalone", "pure"));
  // User's own unchanged methods reference User: also category (2).
  EXPECT_TRUE(containsRef(S.IndirectMethods, "User", "getAge"));
}

TEST(Upt, ChangedMethodsAreNotIndirect) {
  ClassSet V2 = baseSet();
  V2.find("User")->Fields.push_back({"email", "LString;", false, false,
                                     Access::Public});
  V2.find("Manager")->findMethod("check")->Code.push_back(
      {Opcode::Nop, 0, "", "", ""});
  UpdateSpec S = Upt::computeSpec(baseSet(), V2);
  EXPECT_TRUE(containsRef(S.MethodBodyUpdates, "Manager", "check"));
  EXPECT_FALSE(containsRef(S.IndirectMethods, "Manager", "check"));
}

TEST(Upt, SubclassClosurePropagatesToDescendants) {
  ClassSet V1 = baseSet();
  V1.add(ClassBuilder("Admin", "User").build());
  V1.add(ClassBuilder("SuperAdmin", "Admin").build());
  ClassSet V2 = V1;
  V2.find("User")->Fields.push_back({"email", "LString;", false, false,
                                     Access::Public});
  UpdateSpec S = Upt::computeSpec(V1, V2);
  EXPECT_TRUE(contains(S.DirectClassUpdates, "User"));
  EXPECT_FALSE(contains(S.DirectClassUpdates, "Admin"));
  EXPECT_TRUE(contains(S.ClassUpdates, "Admin"));
  EXPECT_TRUE(contains(S.ClassUpdates, "SuperAdmin"));
  // Closure members whose own definition is unchanged are not "changed"
  // in the table counters.
  EXPECT_EQ(S.Summary.ClassesChanged, 1);
}

TEST(Upt, SuperclassChangeIsAClassUpdate) {
  ClassSet V1 = baseSet();
  V1.add(ClassBuilder("Mid").build());
  V1.add(ClassBuilder("Leaf", "Mid").build());
  ClassSet V2 = V1;
  V2.find("Leaf")->Super = "Object";
  UpdateSpec S = Upt::computeSpec(V1, V2);
  EXPECT_TRUE(contains(S.ClassUpdates, "Leaf"));
}

TEST(Upt, ReferencedClassesScansAllSymbolicOperands) {
  MethodDef M;
  M.Name = "m";
  M.Sig = "()V";
  M.Code = {{Opcode::New, 0, "A", "", ""},
            {Opcode::GetStatic, 0, "B.s", "I", ""},
            {Opcode::InvokeStatic, 0, "C.f", "()V", ""},
            {Opcode::InstanceOf, 0, "D", "", ""},
            {Opcode::CheckCast, 0, "E", "", ""},
            {Opcode::Return, 0, "", "", ""}};
  std::vector<std::string> Refs = Upt::referencedClasses(M);
  for (const char *Name : {"A", "B", "C", "D", "E"})
    EXPECT_TRUE(contains(Refs, Name)) << Name;
  EXPECT_EQ(Refs.size(), 5u);
}

TEST(Upt, BlacklistFlowsIntoSpec) {
  std::vector<MethodRef> Black = {{"Manager", "check", "(LUser;)I"}};
  UpdateSpec S = Upt::computeSpec(baseSet(), baseSet(), Black);
  ASSERT_EQ(S.Blacklist.size(), 1u);
  EXPECT_EQ(S.Blacklist[0].key(), "Manager.check(LUser;)I");
}

TEST(Upt, PrepareCarriesVersionTag) {
  UpdateBundle B = Upt::prepare(baseSet(), baseSet(), "v131");
  EXPECT_EQ(B.VersionTag, "v131");
  EXPECT_EQ(B.renamedOldClass("User"), "v131_User");
  EXPECT_TRUE(B.NewProgram.contains("Object")); // built-ins ensured
}

TEST(Upt, SignatureChangedDetector) {
  ClassDef A = ClassBuilder("X").build();
  ClassDef B = ClassBuilder("X").build();
  EXPECT_FALSE(Upt::classSignatureChanged(A, B));
  ClassDef C = ClassBuilder("X").build();
  C.Fields.push_back({"f", "I", false, false, Access::Public});
  EXPECT_TRUE(Upt::classSignatureChanged(A, C));
  ClassDef D("X", "Other");
  EXPECT_TRUE(Upt::classSignatureChanged(A, D));
}

// Every opcode that can name a class in an operand, against the operand it
// names it in — including array allocation, whose element descriptor can
// itself be an array type.
TEST(Upt, ReferencedClassesCoverEveryNamingOpcode) {
  struct Case {
    Instr I;
    const char *Expect; // nullptr: no class referenced
  };
  const Case Cases[] = {
      {{Opcode::New, 0, "A", "", ""}, "A"},
      {{Opcode::InstanceOf, 0, "B", "", ""}, "B"},
      {{Opcode::CheckCast, 0, "C", "", ""}, "C"},
      {{Opcode::GetField, 0, "D.f", "I", ""}, "D"},
      {{Opcode::PutField, 0, "E.f", "I", ""}, "E"},
      {{Opcode::GetStatic, 0, "F.s", "I", ""}, "F"},
      {{Opcode::PutStatic, 0, "G.s", "I", ""}, "G"},
      {{Opcode::InvokeVirtual, 0, "H.m", "()V", ""}, "H"},
      {{Opcode::InvokeStatic, 0, "Ic.m", "()V", ""}, "Ic"},
      {{Opcode::InvokeSpecial, 0, "J.m", "()V", ""}, "J"},
      {{Opcode::NewArray, 0, "", "LElem;", ""}, "Elem"},
      // Nested element descriptor: peel "[[LDeep;" down to "Deep".
      {{Opcode::NewArray, 0, "", "[[LDeep;", ""}, "Deep"},
      // Primitive element arrays reference no class.
      {{Opcode::NewArray, 0, "", "I", ""}, nullptr},
      {{Opcode::IConst, 7, "", "", ""}, nullptr},
  };
  size_t N = 0;
  for (const Case &C : Cases) {
    MethodDef M;
    M.Name = "m";
    M.Sig = "()V";
    M.Code = {C.I, {Opcode::Return, 0, "", "", ""}};
    std::vector<std::string> Refs = Upt::referencedClasses(M);
    if (C.Expect) {
      ASSERT_EQ(Refs.size(), 1u) << "case " << N;
      EXPECT_EQ(Refs[0], C.Expect) << "case " << N;
    } else {
      EXPECT_TRUE(Refs.empty()) << "case " << N;
    }
    ++N;
  }
}

TEST(Upt, SignatureChangedOnFieldReorderOnly) {
  ClassDef A = ClassBuilder("X").field("a", "I").field("b", "I").build();
  ClassDef B = ClassBuilder("X").field("b", "I").field("a", "I").build();
  // Same field *set*, different offsets: instances must be transformed.
  EXPECT_TRUE(Upt::classSignatureChanged(A, B));
}

TEST(Upt, SignatureChangedOnFlagOnlyToggle) {
  ClassDef A = ClassBuilder("X").field("a", "I").build();
  ClassDef Fin =
      ClassBuilder("X").field("a", "I", Access::Public, true).build();
  EXPECT_TRUE(Upt::classSignatureChanged(A, Fin));
  ClassDef Priv = ClassBuilder("X").field("a", "I", Access::Private).build();
  EXPECT_TRUE(Upt::classSignatureChanged(A, Priv));
}

TEST(Upt, SignatureChangedOnMethodResignatureSameName) {
  ClassDef A = ClassBuilder("X").build();
  A.Methods.push_back({});
  A.Methods.back().Name = "m";
  A.Methods.back().Sig = "()I";
  ClassDef B = A;
  B.Methods.back().Sig = "(I)I"; // same name, new signature
  EXPECT_TRUE(Upt::classSignatureChanged(A, B));
}

TEST(Upt, SignatureChangedOnSuperclassSwapToSibling) {
  ClassDef A("Leaf", "ParentOne");
  ClassDef B("Leaf", "ParentTwo"); // sibling parent, same shape otherwise
  EXPECT_TRUE(Upt::classSignatureChanged(A, B));
}

TEST(Upt, BodyOnlyChangeIsNotASignatureChange) {
  ClassDef A = ClassBuilder("X").build();
  A.Methods.push_back({});
  A.Methods.back().Name = "m";
  A.Methods.back().Sig = "()I";
  A.Methods.back().Code = {{Opcode::IConst, 1, "", "", ""},
                           {Opcode::IReturn, 0, "", "", ""}};
  ClassDef B = A;
  B.Methods.back().Code[0].IVal = 2; // body differs, signature does not
  EXPECT_FALSE(Upt::classSignatureChanged(A, B));
}
