//===----------------------------------------------------------------------===//
///
/// \file
/// Quiescence-escalation tests: the watchdog's structured report (per
/// blocking cause), every rung of the Retry -> Rescue -> Degrade -> Abort
/// ladder, the degrade-then-resume round trip, the two new fault sites,
/// and the retry-histogram counting rule.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "dsu/Quiescence.h"
#include "dsu/Updater.h"
#include "dsu/Upt.h"
#include "support/FaultInjector.h"
#include "support/Telemetry.h"
#include "vm/Network.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace jvolve;
using namespace jvolve::test;

namespace {

using Site = FaultInjector::Site;

/// Worker.spin()V: accumulate-and-sleep forever, no return instruction.
/// \p Longer inserts a reachable no-op so the body's instruction count
/// differs from the base variant (defeating the identity-remap rescue).
ClassSet spinProgram(int64_t K, bool Longer = false) {
  ClassSet Set;
  ClassBuilder CB("Worker");
  CB.staticField("sum", "I");
  MethodBuilder &M = CB.staticMethod("spin", "()V");
  M.label("top").getstatic("Worker", "sum", "I").iconst(K);
  if (Longer)
    M.nop();
  M.iadd()
      .putstatic("Worker", "sum", "I")
      .iconst(20)
      .intrinsic(IntrinsicId::SleepTicks)
      .jump("top");
  Set.add(CB.build());
  return Set;
}

/// Srv.run(I)V: accept one connection, then recv/respond until EOF. The
/// method returns, so it is a plain changed method, never "infinite loop".
ClassSet recvProgram(int64_t K, bool Longer = false) {
  ClassSet Set;
  ClassBuilder CB("Srv");
  MethodBuilder &M = CB.staticMethod("run", "(I)V");
  M.locals(3)
      .load(0)
      .intrinsic(IntrinsicId::NetAccept)
      .store(1)
      .label("loop")
      .load(1)
      .intrinsic(IntrinsicId::NetRecv)
      .store(2)
      .load(2)
      .iconst(0)
      .branch(Opcode::IfICmpLt, "done")
      .load(1)
      .load(2)
      .iconst(K);
  if (Longer)
    M.nop();
  M.iadd()
      .intrinsic(IntrinsicId::NetSend)
      .jump("loop")
      .label("done")
      .ret();
  Set.add(CB.build());
  return Set;
}

/// Busy.work()V: a bounded loop of \p Reps iterations, then returns —
/// long enough to outlive one deadline, short enough to finish.
ClassSet busyProgram(int64_t Reps, int64_t K) {
  ClassSet Set;
  ClassBuilder CB("Busy");
  CB.staticField("sum", "I");
  CB.staticMethod("work", "()V")
      .locals(1)
      .iconst(Reps)
      .store(0)
      .label("top")
      .load(0)
      .branch(Opcode::IfLe, "done")
      .getstatic("Busy", "sum", "I")
      .iconst(K)
      .iadd()
      .putstatic("Busy", "sum", "I")
      .load(0)
      .iconst(1)
      .isub()
      .store(0)
      .jump("top")
      .label("done")
      .ret();
  Set.add(CB.build());
  return Set;
}

/// Sleeper.run()V calls nap() in a loop; nap() sleeps for a very long time
/// and returns. Ticker.run()V spins so the virtual clock never
/// fast-forwards across the sleep.
ClassSet sleeperProgram(bool NewNap) {
  ClassSet Set;
  {
    ClassBuilder CB("Sleeper");
    CB.staticField("naps", "I");
    MethodBuilder &Nap = CB.staticMethod("nap", "()V");
    Nap.iconst(5'000'000);
    if (NewNap)
      Nap.nop(); // size change: the identity remap cannot release it
    Nap.intrinsic(IntrinsicId::SleepTicks)
        .getstatic("Sleeper", "naps", "I")
        .iconst(1)
        .iadd()
        .putstatic("Sleeper", "naps", "I")
        .ret();
    CB.staticMethod("run", "()V")
        .label("top")
        .invokestatic("Sleeper", "nap", "()V")
        .jump("top");
    Set.add(CB.build());
  }
  {
    ClassBuilder CB("Ticker");
    CB.staticField("n", "I");
    CB.staticMethod("run", "()V")
        .label("top")
        .getstatic("Ticker", "n", "I")
        .iconst(1)
        .iadd()
        .putstatic("Ticker", "n", "I")
        .jump("top");
    Set.add(CB.build());
  }
  return Set;
}

/// Three-class program for the degrade round trip: Spin.spin()V loops
/// until Ctl.stop is set (so it *can* return, eventually), and class D is
/// shape-changed in v2 — the part degrade must defer.
ClassSet degradeProgram(int64_t K, bool V2) {
  ClassSet Set;
  {
    ClassBuilder CB("Ctl");
    CB.staticField("stop", "I");
    CB.staticMethod("halt", "()V")
        .iconst(1)
        .putstatic("Ctl", "stop", "I")
        .ret();
    Set.add(CB.build());
  }
  {
    ClassBuilder CB("D");
    CB.field("x", "I");
    if (V2)
      CB.field("y", "I");
    Set.add(CB.build());
  }
  {
    ClassBuilder CB("Spin");
    CB.staticField("sum", "I");
    MethodBuilder &M = CB.staticMethod("spin", "()V");
    M.label("top")
        .getstatic("Ctl", "stop", "I")
        .branch(Opcode::IfNe, "done")
        .getstatic("Spin", "sum", "I")
        .iconst(K);
    if (V2)
      M.nop();
    M.iadd()
        .putstatic("Spin", "sum", "I")
        .iconst(20)
        .intrinsic(IntrinsicId::SleepTicks)
        .jump("top")
        .label("done")
        .ret();
    Set.add(CB.build());
  }
  return Set;
}

/// P gains a second static field in v2: a class update with something to
/// install (and to roll back when the class-load fault fires).
ClassSet fieldProgram(bool V2) {
  ClassSet Set;
  ClassBuilder CB("P");
  CB.staticField("x", "I");
  if (V2)
    CB.staticField("y", "I");
  CB.staticMethod("get", "()I").getstatic("P", "x", "I").iret();
  Set.add(CB.build());
  return Set;
}

int64_t staticIntOf(VM &TheVM, const char *Cls, size_t Slot) {
  ClassRegistry &Reg = TheVM.registry();
  return Reg.cls(Reg.idOf(Cls)).Statics[Slot].IntVal;
}

bool anyContains(const std::vector<std::string> &Haystack,
                 const std::string &Needle) {
  for (const std::string &S : Haystack)
    if (S.find(Needle) != std::string::npos)
      return true;
  return false;
}

} // namespace

//===--- The report ---------------------------------------------------------===//

TEST(Quiescence, InfiniteLoopDiagnosisNamesMethod) {
  if (codeVersionModeForced())
    GTEST_SKIP() << "body-only bundle commits through the version chains under "
                    "JVOLVE_CODEVERSION=1 -- no safe-point protocol to assert";
  VM TheVM(smallConfig());
  TheVM.loadProgram(spinProgram(1));
  TheVM.spawnThread("Worker", "spin", "()V", {}, "spinner", true);
  TheVM.run(500);

  Updater U(TheVM);
  UpdateOptions Opts;
  Opts.TimeoutTicks = 20'000;
  UpdateResult R = U.applyNow(
      Upt::prepare(spinProgram(1), spinProgram(2, /*Longer=*/true), "v1"),
      Opts);

  EXPECT_EQ(R.Status, UpdateStatus::TimedOut);
  EXPECT_EQ(R.ResolvedRung, QuiescenceRung::Abort);
  ASSERT_TRUE(R.Quiescence.diagnosed());
  EXPECT_FALSE(R.Quiescence.Forced);
  ASSERT_EQ(R.Quiescence.Threads.size(), 1u);
  const QuiescenceThreadInfo &T = R.Quiescence.Threads[0];
  EXPECT_EQ(T.Name, "spinner");
  ASSERT_EQ(T.PinningFrames.size(), 1u);
  const QuiescenceFrameInfo &F = T.PinningFrames[0];
  EXPECT_EQ(F.Cause, QuiescenceBlockCause::InfiniteLoop);
  EXPECT_EQ(F.QualifiedName, "Worker.spin()V");
  EXPECT_TRUE(F.BarrierArmed); // the barrier that will never fire
  EXPECT_FALSE(F.RescuableBodySwap);

  std::vector<std::string> Loops = R.Quiescence.loopingMethods();
  ASSERT_EQ(Loops.size(), 1u);
  EXPECT_EQ(Loops[0], "Worker.spin()V");

  // The abort message names the looping method.
  EXPECT_NE(R.Message.find("Worker.spin()V"), std::string::npos)
      << R.Message;
  EXPECT_NE(R.Message.find("never returns"), std::string::npos) << R.Message;

  // So does the rendered report.
  std::string Report = R.Quiescence.str();
  EXPECT_NE(Report.find("spinner"), std::string::npos) << Report;
  EXPECT_NE(Report.find("infinite loop"), std::string::npos) << Report;
}

TEST(Quiescence, SameSizeChangeIsReportedRescuable) {
  if (codeVersionModeForced())
    GTEST_SKIP() << "body-only bundle commits through the version chains under "
                    "JVOLVE_CODEVERSION=1 -- no safe-point protocol to assert";
  VM TheVM(smallConfig());
  TheVM.loadProgram(spinProgram(1));
  TheVM.spawnThread("Worker", "spin", "()V", {}, "spinner", true);
  TheVM.run(500);

  Updater U(TheVM);
  UpdateOptions Opts;
  Opts.TimeoutTicks = 10'000; // rescue stays off: the report only flags it
  UpdateResult R =
      U.applyNow(Upt::prepare(spinProgram(1), spinProgram(5), "v1"), Opts);

  EXPECT_EQ(R.Status, UpdateStatus::TimedOut);
  ASSERT_EQ(R.Quiescence.Threads.size(), 1u);
  ASSERT_EQ(R.Quiescence.Threads[0].PinningFrames.size(), 1u);
  EXPECT_TRUE(R.Quiescence.Threads[0].PinningFrames[0].RescuableBodySwap);
  EXPECT_NE(R.Quiescence.str().find("rescuable: identity remap"),
            std::string::npos);
}

TEST(Quiescence, ReportShowsBlockedRecvState) {
  if (codeVersionModeForced())
    GTEST_SKIP() << "body-only bundle commits through the version chains under "
                    "JVOLVE_CODEVERSION=1 -- no safe-point protocol to assert";
  VM TheVM(smallConfig());
  TheVM.loadProgram(recvProgram(7));
  TheVM.spawnThread("Srv", "run", "(I)V", {Slot::ofInt(9)}, "srv", true);
  TheVM.injectConnection(9, {10, 20}, /*InterArrival=*/500'000);
  TheVM.run(3'000); // first request served; blocked on the distant second

  Updater U(TheVM);
  UpdateOptions Opts;
  Opts.TimeoutTicks = 10'000;
  UpdateResult R = U.applyNow(
      Upt::prepare(recvProgram(7), recvProgram(9, /*Longer=*/true), "v1"),
      Opts);

  EXPECT_EQ(R.Status, UpdateStatus::TimedOut);
  ASSERT_TRUE(R.Quiescence.diagnosed());
  ASSERT_EQ(R.Quiescence.Threads.size(), 1u);
  const QuiescenceThreadInfo &T = R.Quiescence.Threads[0];
  EXPECT_EQ(T.State, ThreadState::BlockedRecv);
  ASSERT_EQ(T.PinningFrames.size(), 1u);
  EXPECT_EQ(T.PinningFrames[0].Cause, QuiescenceBlockCause::ChangedMethod);
  EXPECT_TRUE(R.Quiescence.loopingMethods().empty());
  EXPECT_NE(R.Quiescence.str().find("blocked-recv"), std::string::npos)
      << R.Quiescence.str();
}

//===--- The ladder ---------------------------------------------------------===//

TEST(Quiescence, RetryRungExtendsDeadlineUntilMethodReturns) {
  if (codeVersionModeForced())
    GTEST_SKIP() << "body-only bundle commits through the version chains under "
                    "JVOLVE_CODEVERSION=1 -- no safe-point protocol to assert";
  VM TheVM(smallConfig());
  TheVM.loadProgram(busyProgram(3'000, 1));
  TheVM.spawnThread("Busy", "work", "()V", {}, "worker", true);
  TheVM.run(100);

  Updater U(TheVM);
  UpdateOptions Opts;
  Opts.TimeoutTicks = 3'000;
  Opts.MaxRetries = 8;
  UpdateResult R = U.applyNow(
      Upt::prepare(busyProgram(3'000, 1), busyProgram(3'000, 2), "v1"), Opts);

  ASSERT_EQ(R.Status, UpdateStatus::Applied) << R.Message;
  EXPECT_GE(R.RetriesUsed, 1);
  EXPECT_EQ(R.ResolvedRung, QuiescenceRung::Retry);
  EXPECT_TRUE(R.Quiescence.diagnosed()); // each expiry re-diagnoses
}

TEST(Quiescence, RescueRungRemapsSameSizeBody) {
  if (codeVersionModeForced())
    GTEST_SKIP() << "body-only bundle commits through the version chains under "
                    "JVOLVE_CODEVERSION=1 -- no safe-point protocol to assert";
  VM TheVM(smallConfig());
  TheVM.loadProgram(spinProgram(1));
  TheVM.spawnThread("Worker", "spin", "()V", {}, "spinner", true);
  TheVM.run(500);

  Updater U(TheVM);
  UpdateOptions Opts;
  Opts.TimeoutTicks = 5'000;
  Opts.EnableRescue = true;
  UpdateResult R =
      U.applyNow(Upt::prepare(spinProgram(1), spinProgram(5), "v1"), Opts);

  ASSERT_EQ(R.Status, UpdateStatus::Applied) << R.Message;
  EXPECT_EQ(R.ResolvedRung, QuiescenceRung::Rescue);
  EXPECT_GE(R.RescuedFrames, 1);

  // The remapped frame now runs the new body: sum advances in steps of 5.
  int64_t Before = staticIntOf(TheVM, "Worker", 0);
  TheVM.run(2'000);
  int64_t After = staticIntOf(TheVM, "Worker", 0);
  EXPECT_GT(After, Before);
  EXPECT_EQ((After - Before) % 5, 0);
}

TEST(Quiescence, RescueRungForceYieldsSleepingThread) {
  if (codeVersionModeForced())
    GTEST_SKIP() << "body-only bundle commits through the version chains under "
                    "JVOLVE_CODEVERSION=1 -- no safe-point protocol to assert";
  VM TheVM(smallConfig());
  TheVM.loadProgram(sleeperProgram(false));
  TheVM.spawnThread("Sleeper", "run", "()V", {}, "sleeper", true);
  TheVM.spawnThread("Ticker", "run", "()V", {}, "ticker", true);
  TheVM.run(500); // sleeper is now mid-nap for 5M ticks

  Updater U(TheVM);
  UpdateOptions Opts;
  Opts.TimeoutTicks = 10'000;
  Opts.EnableRescue = true;
  UpdateResult R = U.applyNow(
      Upt::prepare(sleeperProgram(false), sleeperProgram(true), "v1"), Opts);

  // The size-changed nap() cannot be remapped, but cutting the sleep short
  // lets it run to its return where the barrier fires.
  ASSERT_EQ(R.Status, UpdateStatus::Applied) << R.Message;
  EXPECT_EQ(R.ResolvedRung, QuiescenceRung::Rescue);
  EXPECT_GE(R.ForcedYields, 1);
  EXPECT_GE(staticIntOf(TheVM, "Sleeper", 0), 1); // nap completed early
}

TEST(Quiescence, DegradeRungAppliesBodySubsetAndResumes) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(degradeProgram(1, false));
  TheVM.spawnThread("Spin", "spin", "()V", {}, "spinner", true);
  TheVM.run(500);

  Updater U(TheVM);
  UpdateOptions Opts;
  Opts.TimeoutTicks = 5'000;
  Opts.AllowDegraded = true;
  UpdateResult R = U.applyNow(
      Upt::prepare(degradeProgram(1, false), degradeProgram(2, true), "v1"),
      Opts);

  ASSERT_EQ(R.Status, UpdateStatus::Degraded) << R.Message;
  EXPECT_EQ(R.ResolvedRung, QuiescenceRung::Degrade);
  ASSERT_EQ(R.DegradedApplied.size(), 1u);
  EXPECT_EQ(R.DegradedApplied[0], "Spin.spin()V");
  EXPECT_TRUE(anyContains(R.DegradedDeferred, "class update D"))
      << R.Message;
  ASSERT_TRUE(U.hasDeferred());

  // The class-shape change did not land yet.
  ClassRegistry &Reg = TheVM.registry();
  EXPECT_EQ(Reg.cls(Reg.idOf("D")).findInstanceField("y"), nullptr);
  // The running program version carries the swapped body.
  EXPECT_NE(TheVM.program().find("Spin"), nullptr);

  // Quiesce the spinner, then resume the deferred remainder.
  TheVM.callStatic("Ctl", "halt", "()V");
  TheVM.run(50'000);
  UpdateResult R2 = U.resumeDeferred(UpdateOptions());
  ASSERT_EQ(R2.Status, UpdateStatus::Applied) << R2.Message;
  EXPECT_FALSE(U.hasDeferred());
  EXPECT_NE(Reg.cls(Reg.idOf("D")).findInstanceField("y"), nullptr);
}

TEST(Quiescence, DegradeFallsThroughToAbortWithoutBodySubset) {
  // The only change is a class update: no method-body subset exists, so
  // AllowDegraded still aborts — with the report explaining the pin. The
  // pinned method is a bounded loop far longer than the deadline, so the
  // diagnosis is Blacklisted (it *would* return, just not in time), not
  // InfiniteLoop.
  ClassSet V1 = busyProgram(100'000'000, 1);
  ClassSet V2 = busyProgram(100'000'000, 1);
  ClassBuilder Extra("Aux");
  Extra.field("z", "I");
  V1.add(Extra.build());
  ClassBuilder Extra2("Aux");
  Extra2.field("z", "I");
  Extra2.field("w", "I");
  V2.add(Extra2.build());

  VM TheVM(smallConfig());
  TheVM.loadProgram(V1);
  TheVM.spawnThread("Busy", "work", "()V", {}, "worker", true);
  TheVM.run(500);
  // Make the worker pin the update: blacklist its method so no rung can
  // release it.
  UpdateBundle B = Upt::prepare(V1, V2, "v1");
  B.Spec.Blacklist.push_back({"Busy", "work", "()V"});

  Updater U(TheVM);
  UpdateOptions Opts;
  Opts.TimeoutTicks = 5'000;
  Opts.AllowDegraded = true;
  UpdateResult R = U.applyNow(std::move(B), Opts);

  EXPECT_EQ(R.Status, UpdateStatus::TimedOut);
  EXPECT_EQ(R.ResolvedRung, QuiescenceRung::Abort);
  EXPECT_FALSE(U.hasDeferred());
  ASSERT_EQ(R.Quiescence.Threads.size(), 1u);
  EXPECT_EQ(R.Quiescence.Threads[0].PinningFrames[0].Cause,
            QuiescenceBlockCause::Blacklisted);
}

//===--- Fault sites --------------------------------------------------------===//

TEST(QuiescenceFault, ForcedExpiryAbortsWithReport) {
  if (codeVersionModeForced())
    GTEST_SKIP() << "body-only bundle commits through the version chains under "
                    "JVOLVE_CODEVERSION=1 -- no safe-point protocol to assert";
  VM TheVM(smallConfig());
  TheVM.loadProgram(spinProgram(1));
  TheVM.spawnThread("Worker", "spin", "()V", {}, "spinner", true);
  TheVM.run(500);

  TheVM.faults().arm(Site::QuiescenceWatchdogExpiry, /*Fire=*/1, /*Skip=*/0);
  Updater U(TheVM);
  UpdateResult R = U.applyNow(
      Upt::prepare(spinProgram(1), spinProgram(2, /*Longer=*/true), "v1"),
      UpdateOptions()); // default 2M-tick deadline: only the fault expires it

  EXPECT_EQ(R.Status, UpdateStatus::TimedOut);
  ASSERT_TRUE(R.Quiescence.diagnosed());
  EXPECT_TRUE(R.Quiescence.Forced);
  EXPECT_EQ(TheVM.faults().fireCount(Site::QuiescenceWatchdogExpiry), 1u);
  EXPECT_NE(R.Message.find("never returns"), std::string::npos) << R.Message;
}

TEST(QuiescenceFault, ForcedExpirySurvivedByRescue) {
  if (codeVersionModeForced())
    GTEST_SKIP() << "body-only bundle commits through the version chains under "
                    "JVOLVE_CODEVERSION=1 -- no safe-point protocol to assert";
  VM TheVM(smallConfig());
  TheVM.loadProgram(spinProgram(1));
  TheVM.spawnThread("Worker", "spin", "()V", {}, "spinner", true);
  TheVM.run(500);

  TheVM.faults().arm(Site::QuiescenceWatchdogExpiry, /*Fire=*/1, /*Skip=*/0);
  Updater U(TheVM);
  UpdateOptions Opts;
  Opts.EnableRescue = true;
  UpdateResult R =
      U.applyNow(Upt::prepare(spinProgram(1), spinProgram(5), "v1"), Opts);

  // The injected expiry escalates early, but the rescue rung synthesizes
  // the identity remap and the update still lands.
  ASSERT_EQ(R.Status, UpdateStatus::Applied) << R.Message;
  EXPECT_EQ(R.ResolvedRung, QuiescenceRung::Rescue);
  EXPECT_GE(R.RescuedFrames, 1);
  EXPECT_TRUE(R.Quiescence.Forced);
}

TEST(QuiescenceFault, NetSlowClientStretchesArrivals) {
  VM TheVM(smallConfig());
  TheVM.faults().arm(Site::NetSlowClient, /*Fire=*/1, /*Skip=*/0);
  uint64_t Now = TheVM.scheduler().ticks();
  int Conn = TheVM.injectConnection(9, {1, 2}, /*InterArrival=*/10);
  EXPECT_EQ(TheVM.faults().fireCount(Site::NetSlowClient), 1u);

  int64_t V = 0;
  uint64_t Ready = 0;
  ASSERT_EQ(TheVM.net().recv(Conn, Now, V, Ready),
            Network::RecvStatus::Value);
  EXPECT_EQ(V, 1);
  // The 10-tick gap was stretched 50x by the fault.
  ASSERT_EQ(TheVM.net().recv(Conn, Now, V, Ready),
            Network::RecvStatus::NotReady);
  EXPECT_EQ(Ready, Now + 500);

  // Subsequent connections arrive at their natural pace again.
  int Conn2 = TheVM.injectConnection(9, {1, 2}, /*InterArrival=*/10);
  ASSERT_EQ(TheVM.net().recv(Conn2, Now, V, Ready),
            Network::RecvStatus::Value);
  ASSERT_EQ(TheVM.net().recv(Conn2, Now, V, Ready),
            Network::RecvStatus::NotReady);
  EXPECT_EQ(Ready, Now + 10);
}

TEST(QuiescenceFault, EnvSpecArmsEveryNewVm) {
  const char *Prev = std::getenv("JVOLVE_INJECT");
  std::string Saved = Prev ? Prev : "";
  setenv("JVOLVE_INJECT", "net-slow-client:2:1", 1);
  {
    VM TheVM(smallConfig());
    EXPECT_TRUE(TheVM.faults().armed(Site::NetSlowClient));
    EXPECT_FALSE(TheVM.faults().armed(Site::ClassLoad));
  }
  // Unknown entries are ignored with a warning, not fatal.
  setenv("JVOLVE_INJECT", "bogus-site:1,net-slow-client", 1);
  {
    VM TheVM(smallConfig());
    EXPECT_TRUE(TheVM.faults().armed(Site::NetSlowClient));
  }
  if (Prev)
    setenv("JVOLVE_INJECT", Saved.c_str(), 1);
  else
    unsetenv("JVOLVE_INJECT");
}

TEST(QuiescenceFault, ArmFromSpecRejectsUnknownSiteAndBadCounts) {
  FaultInjector FI;
  std::string Err;
  EXPECT_FALSE(FI.armFromSpec("no-such-site", &Err));
  EXPECT_NE(Err.find("unknown fault site"), std::string::npos);
  EXPECT_FALSE(FI.armFromSpec("class-load:x", &Err));
  EXPECT_NE(Err.find("malformed fire count"), std::string::npos);
  EXPECT_FALSE(FI.armFromSpec("class-load:1:y", &Err));
  EXPECT_NE(Err.find("malformed skip count"), std::string::npos);

  EXPECT_TRUE(FI.armFromSpec("quiescence-watchdog-expiry:2:3"));
  EXPECT_TRUE(FI.armed(Site::QuiescenceWatchdogExpiry));

  // The site table knows all seven names (the --inject error message lists
  // them via allSiteNames()).
  std::vector<std::string> Names = FaultInjector::allSiteNames();
  ASSERT_EQ(Names.size(), FaultInjector::NumSites);
  EXPECT_TRUE(anyContains(Names, "quiescence-watchdog-expiry"));
  EXPECT_TRUE(anyContains(Names, "net-slow-client"));
}

//===--- Telemetry ----------------------------------------------------------===//

TEST(QuiescenceTelemetry, RetryHistogramSkipsRollbackAborts) {
  bool Was = Telemetry::isEnabled();
  Telemetry &Tel = Telemetry::global();
  Tel.setEnabled(true);

  uint64_t Before = 0;
  {
    // A rollback abort happens after quiescence was reached: no sample.
    VM TheVM(smallConfig());
    Before = Tel.histogram(metrics::DsuUpdateRetries).count();
    TheVM.loadProgram(fieldProgram(false));
    TheVM.faults().arm(Site::ClassLoad);
    Updater U(TheVM);
    UpdateResult R =
        U.applyNow(Upt::prepare(fieldProgram(false), fieldProgram(true), "v1"));
    ASSERT_EQ(R.Status, UpdateStatus::RolledBack) << R.Message;
    EXPECT_EQ(Tel.histogram(metrics::DsuUpdateRetries).count(), Before);
  }
  {
    // An applied update samples once (with zero retries here).
    VM TheVM(smallConfig());
    TheVM.loadProgram(fieldProgram(false));
    Updater U(TheVM);
    UpdateResult R =
        U.applyNow(Upt::prepare(fieldProgram(false), fieldProgram(true), "v1"));
    ASSERT_EQ(R.Status, UpdateStatus::Applied) << R.Message;
    EXPECT_EQ(Tel.histogram(metrics::DsuUpdateRetries).count(), Before + 1);
  }

  Tel.setEnabled(Was);
}

TEST(QuiescenceTelemetry, EscalationCountersAdvance) {
  if (codeVersionModeForced())
    GTEST_SKIP() << "body-only bundle commits through the version chains under "
                    "JVOLVE_CODEVERSION=1 -- no safe-point protocol to assert";
  bool Was = Telemetry::isEnabled();
  Telemetry &Tel = Telemetry::global();
  Tel.setEnabled(true);

  VM TheVM(smallConfig());
  uint64_t Expiries =
      Tel.counter(metrics::DsuQuiescenceExpiries).value();
  uint64_t Rescued =
      Tel.counter(metrics::DsuQuiescenceRescuedFrames).value();
  TheVM.loadProgram(spinProgram(1));
  TheVM.spawnThread("Worker", "spin", "()V", {}, "spinner", true);
  TheVM.run(500);

  Updater U(TheVM);
  UpdateOptions Opts;
  Opts.TimeoutTicks = 5'000;
  Opts.EnableRescue = true;
  UpdateResult R =
      U.applyNow(Upt::prepare(spinProgram(1), spinProgram(5), "v1"), Opts);
  ASSERT_EQ(R.Status, UpdateStatus::Applied) << R.Message;

  EXPECT_GT(Tel.counter(metrics::DsuQuiescenceExpiries).value(), Expiries);
  EXPECT_GT(Tel.counter(metrics::DsuQuiescenceRescuedFrames).value(),
            Rescued);
  Tel.setEnabled(Was);
}
