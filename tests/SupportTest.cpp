//===----------------------------------------------------------------------===//
///
/// \file
/// Support-library tests: order statistics, string utilities, the
/// deterministic PRNG, and the table printer.
///
//===----------------------------------------------------------------------===//

#include "support/Rng.h"
#include "support/Stats.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <gtest/gtest.h>

using namespace jvolve;

TEST(Stats, MedianOfOddSamples) {
  QuartileSummary S = summarizeQuartiles({5, 1, 3});
  EXPECT_DOUBLE_EQ(S.Median, 3);
}

TEST(Stats, MedianOfEvenSamplesInterpolates) {
  QuartileSummary S = summarizeQuartiles({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(S.Median, 2.5);
}

TEST(Stats, QuartilesOrdered) {
  std::vector<double> V;
  for (int I = 1; I <= 21; ++I)
    V.push_back(I);
  QuartileSummary S = summarizeQuartiles(V);
  EXPECT_DOUBLE_EQ(S.Median, 11);
  EXPECT_DOUBLE_EQ(S.LowerQuartile, 6);
  EXPECT_DOUBLE_EQ(S.UpperQuartile, 16);
  EXPECT_DOUBLE_EQ(S.iqr(), 10);
}

TEST(Stats, EmptyAndSingle) {
  EXPECT_DOUBLE_EQ(summarizeQuartiles({}).Median, 0);
  QuartileSummary S = summarizeQuartiles({7});
  EXPECT_DOUBLE_EQ(S.Median, 7);
  EXPECT_DOUBLE_EQ(S.LowerQuartile, 7);
  EXPECT_DOUBLE_EQ(S.UpperQuartile, 7);
}

TEST(Stats, Mean) {
  EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(mean({}), 0);
}

TEST(Stats, PercentileMatchesQuartiles) {
  std::vector<double> V;
  for (int I = 1; I <= 21; ++I)
    V.push_back(I);
  QuartileSummary S = summarizeQuartiles(V);
  EXPECT_DOUBLE_EQ(percentile(V, 50), S.Median);
  EXPECT_DOUBLE_EQ(percentile(V, 25), S.LowerQuartile);
  EXPECT_DOUBLE_EQ(percentile(V, 75), S.UpperQuartile);
}

TEST(Stats, PercentileExtremesAndInterpolation) {
  std::vector<double> V = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(V, 0), 10);
  EXPECT_DOUBLE_EQ(percentile(V, 100), 40);
  EXPECT_DOUBLE_EQ(percentile(V, 50), 25);
  // Rank 0.95 * 3 = 2.85 interpolates between 30 and 40.
  EXPECT_DOUBLE_EQ(percentile(V, 95), 38.5);
  // Out-of-range P clamps rather than reading past the ends.
  EXPECT_DOUBLE_EQ(percentile(V, -5), 10);
  EXPECT_DOUBLE_EQ(percentile(V, 150), 40);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0);
  EXPECT_DOUBLE_EQ(percentile({7}, 99), 7);
}

TEST(Stats, QuartileSummaryRendersMedianAndSpread) {
  QuartileSummary S = summarizeQuartiles({1, 2, 3, 4, 5});
  EXPECT_EQ(S.str(), "3.0 [2.0..4.0]");
  EXPECT_EQ(S.str(2), "3.00 [2.00..4.00]");
}

TEST(StringUtils, SplitBasic) {
  std::vector<std::string> P = splitString("a@b@c", '@');
  ASSERT_EQ(P.size(), 3u);
  EXPECT_EQ(P[0], "a");
  EXPECT_EQ(P[2], "c");
}

TEST(StringUtils, SplitWithLimitMatchesJavaSemantics) {
  // "alice@example.com".split("@", 2) -> ["alice", "example.com"]
  std::vector<std::string> P = splitString("alice@example.com", '@', 2);
  ASSERT_EQ(P.size(), 2u);
  EXPECT_EQ(P[0], "alice");
  EXPECT_EQ(P[1], "example.com");
  // The limit keeps later separators in the tail.
  P = splitString("a@b@c", '@', 2);
  ASSERT_EQ(P.size(), 2u);
  EXPECT_EQ(P[1], "b@c");
}

TEST(StringUtils, SplitNoSeparator) {
  std::vector<std::string> P = splitString("plain", '@');
  ASSERT_EQ(P.size(), 1u);
  EXPECT_EQ(P[0], "plain");
}

TEST(StringUtils, SplitEmptyPieces) {
  std::vector<std::string> P = splitString("@x@", '@');
  ASSERT_EQ(P.size(), 3u);
  EXPECT_EQ(P[0], "");
  EXPECT_EQ(P[2], "");
}

TEST(StringUtils, StartsWith) {
  EXPECT_TRUE(startsWith("JFill12", "JFill"));
  EXPECT_FALSE(startsWith("JF", "JFill"));
  EXPECT_TRUE(startsWith("x", ""));
}

TEST(StringUtils, Join) {
  EXPECT_EQ(joinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(joinStrings({}, ", "), "");
  EXPECT_EQ(joinStrings({"solo"}, ", "), "solo");
}

TEST(Rng, Deterministic) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  EXPECT_NE(A.next(), B.next());
}

TEST(Rng, BoundsRespected) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.nextBelow(10), 10u);
  for (int I = 0; I < 100; ++I) {
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter TP;
  TP.setHeader({"a", "bbbb"});
  TP.addRow({"xxxx", "y"});
  std::string Out = TP.render();
  EXPECT_NE(Out.find("a     bbbb"), std::string::npos);
  EXPECT_NE(Out.find("xxxx  y"), std::string::npos);
  EXPECT_NE(Out.find("----"), std::string::npos);
}

TEST(TablePrinter, FormatsNumbers) {
  EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::fmt(10, 0), "10");
}
