//===----------------------------------------------------------------------===//
///
/// \file
/// Post-commit canary windows and health-gated revert: status-name
/// round-trips, the fault-site registry as single source of truth, the
/// health evaluator's thresholds, and end-to-end reverts that restore
/// removed fields, removed statics, and deleted classes — explicitly,
/// via injected health breaches, under lazy commits, through custom
/// inverse transformers, and with stacked updates during the window.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "dsu/Canary.h"
#include "dsu/Revert.h"
#include "dsu/Transformers.h"
#include "dsu/Updater.h"
#include "dsu/Upt.h"
#include "heap/HeapVerifier.h"
#include "support/FaultInjector.h"

#include <fstream>
#include <gtest/gtest.h>
#include <set>
#include <sstream>

using namespace jvolve;
using namespace jvolve::test;

namespace {

/// v1: Box{val, secret}, Holder.b static, Legacy with one static slot.
ClassSet canaryV1() {
  ClassSet Set;
  ClassBuilder B("Box");
  B.field("val", "I");
  B.field("secret", "I");
  Set.add(B.build());
  ClassBuilder H("Holder");
  H.staticField("b", "LBox;");
  Set.add(H.build());
  ClassBuilder L("Legacy");
  L.staticField("tuning", "I");
  Set.add(L.build());
  ClassBuilder S("Setup");
  S.staticMethod("init", "(I)V")
      .locals(2)
      .newobj("Box")
      .store(1)
      .load(1)
      .load(0)
      .putfield("Box", "val", "I")
      .load(1)
      .iconst(42)
      .putfield("Box", "secret", "I")
      .load(1)
      .putstatic("Holder", "b", "LBox;")
      .ret();
  Set.add(S.build());
  ClassBuilder P("Probe");
  P.staticMethod("val", "()I")
      .getstatic("Holder", "b", "LBox;")
      .getfield("Box", "val", "I")
      .iret();
  P.staticMethod("secret", "()I")
      .getstatic("Holder", "b", "LBox;")
      .getfield("Box", "secret", "I")
      .iret();
  Set.add(P.build());
  return Set;
}

/// v2: secret removed, grade added, Legacy deleted, Probe.secret gone.
/// \p GradeConst parameterizes Probe.grade's constant so a v2 -> v2'
/// body-only update can stack on top of a canaried one.
ClassSet canaryV2(int64_t GradeConst = 5) {
  ClassSet Set;
  ClassBuilder B("Box");
  B.field("val", "I");
  B.field("grade", "I");
  Set.add(B.build());
  ClassBuilder H("Holder");
  H.staticField("b", "LBox;");
  Set.add(H.build());
  ClassBuilder S("Setup");
  S.staticMethod("init", "(I)V")
      .locals(2)
      .newobj("Box")
      .store(1)
      .load(1)
      .load(0)
      .putfield("Box", "val", "I")
      .load(1)
      .putstatic("Holder", "b", "LBox;")
      .ret();
  Set.add(S.build());
  ClassBuilder P("Probe");
  P.staticMethod("val", "()I")
      .getstatic("Holder", "b", "LBox;")
      .getfield("Box", "val", "I")
      .iret();
  P.staticMethod("grade", "()I")
      .getstatic("Holder", "b", "LBox;")
      .getfield("Box", "grade", "I")
      .iconst(GradeConst)
      .iadd()
      .iret();
  Set.add(P.build());
  return Set;
}

UpdateOptions canaryOpts(uint64_t WindowTicks = 100'000'000,
                         uint64_t CheckIntervalTicks = 1'000) {
  UpdateOptions Opts;
  Opts.CanaryWindow.WindowTicks = WindowTicks;
  Opts.CanaryWindow.CheckIntervalTicks = CheckIntervalTicks;
  return Opts;
}

int64_t legacyTuning(VM &TheVM) {
  ClassRegistry &Reg = TheVM.registry();
  ClassId Id = Reg.idOf("Legacy");
  EXPECT_NE(Id, InvalidClassId);
  return Id == InvalidClassId ? -1 : Reg.cls(Id).Statics[0].IntVal;
}

void setLegacyTuning(VM &TheVM, int64_t V) {
  ClassRegistry &Reg = TheVM.registry();
  Reg.cls(Reg.idOf("Legacy")).Statics[0] = Slot::ofInt(V);
}

void expectHeapClean(VM &TheVM, const char *Where) {
  HeapVerifier V(TheVM.heap(), TheVM.registry());
  std::vector<std::string> Problems = V.verify(
      [&TheVM](const std::function<void(Ref &)> &Visit) {
        TheVM.visitRoots(Visit);
      });
  ASSERT_TRUE(Problems.empty()) << Where << ": " << Problems.front();
}

CanaryController *controller(VM &TheVM) {
  return static_cast<CanaryController *>(TheVM.canary());
}

/// Boots v1, seeds one Box (val 7, secret 42) and Legacy.tuning = 99.
void bootV1(VM &TheVM) {
  TheVM.loadProgram(canaryV1());
  TheVM.callStatic("Setup", "init", "(I)V", {Slot::ofInt(7)});
  setLegacyTuning(TheVM, 99);
}

/// Asserts the VM is back to the exact pre-update v1 state: removed
/// field and static restored, program diff against v1 empty, heap clean.
void expectFullyReverted(VM &TheVM, const UpdateResult &R) {
  ASSERT_EQ(R.Status, UpdateStatus::Reverted) << R.Message;
  EXPECT_TRUE(R.Certified);
  EXPECT_TRUE(R.CertificationProblems.empty());
  EXPECT_EQ(TheVM.callStatic("Probe", "val", "()I").IntVal, 7);
  EXPECT_EQ(TheVM.callStatic("Probe", "secret", "()I").IntVal, 42);
  EXPECT_EQ(legacyTuning(TheVM), 99);
  EXPECT_TRUE(Upt::computeSpec(TheVM.program(), canaryV1()).empty());
  CanaryController *Ctl = controller(TheVM);
  ASSERT_NE(Ctl, nullptr);
  EXPECT_EQ(Ctl->state(), CanaryState::Reverted);
  EXPECT_FALSE(Ctl->windowOpen());
  EXPECT_EQ(Ctl->report().ResidualNewObjects, 0u);
  expectHeapClean(TheVM, "after revert");
}

} // namespace

//===----------------------------------------------------------------------===//
// Satellite: status strings round-trip exhaustively.
//===----------------------------------------------------------------------===//

TEST(CanaryStatus, NamesRoundTripExhaustively) {
  std::set<std::string> Seen;
  for (size_t I = 0; I < NumUpdateStatuses; ++I) {
    auto S = static_cast<UpdateStatus>(I);
    std::string Name = updateStatusName(S);
    EXPECT_FALSE(Name.empty()) << "status " << I;
    EXPECT_TRUE(Seen.insert(Name).second) << "duplicate name: " << Name;
    UpdateStatus Back;
    ASSERT_TRUE(updateStatusByName(Name, Back)) << Name;
    EXPECT_EQ(Back, S) << Name;
  }
  EXPECT_TRUE(Seen.count("reverted"));
  EXPECT_TRUE(Seen.count("revert-failed"));
  UpdateStatus Out;
  EXPECT_FALSE(updateStatusByName("no-such-status", Out));
  EXPECT_FALSE(updateStatusByName("", Out));
}

//===----------------------------------------------------------------------===//
// Satellite: the fault-site registry is the single source of truth.
//===----------------------------------------------------------------------===//

TEST(CanaryFaults, SiteRegistryRoundTripsAndIsComplete) {
  std::vector<FaultInjector::Site> Sites = FaultInjector::allSites();
  ASSERT_EQ(Sites.size(), FaultInjector::NumSites);
  std::set<std::string> Names;
  for (FaultInjector::Site S : Sites) {
    std::string Name = FaultInjector::siteName(S);
    EXPECT_FALSE(Name.empty());
    EXPECT_TRUE(Names.insert(Name).second) << "duplicate site: " << Name;
    FaultInjector::Site Back;
    ASSERT_TRUE(FaultInjector::siteByName(Name, Back)) << Name;
    EXPECT_EQ(Back, S) << Name;
  }
  std::vector<std::string> Listed = FaultInjector::allSiteNames();
  ASSERT_EQ(Listed.size(), FaultInjector::NumSites);
  for (const std::string &N : Listed)
    EXPECT_TRUE(Names.count(N)) << N;
  FaultInjector::Site Out;
  EXPECT_FALSE(FaultInjector::siteByName("no-such-site", Out));
  EXPECT_TRUE(Names.count("canary-health-breach"));
}

#ifdef JVOLVE_SOURCE_DIR
TEST(CanaryFaults, DocsListEverySite) {
  std::ifstream In(std::string(JVOLVE_SOURCE_DIR) + "/docs/INTERNALS.md");
  ASSERT_TRUE(In.good()) << "docs/INTERNALS.md not found";
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::string Docs = Buf.str();
  for (const std::string &Name : FaultInjector::allSiteNames())
    EXPECT_NE(Docs.find("`" + Name + "`"), std::string::npos)
        << "docs/INTERNALS.md is missing fault site `" << Name << "`";
}
#endif

//===----------------------------------------------------------------------===//
// Health evaluator thresholds.
//===----------------------------------------------------------------------===//

namespace {

CanaryHealthSample sample(uint64_t Traps, uint64_t Shed, uint64_t LazyFailed,
                          uint64_t Responses, uint64_t LatencySum) {
  CanaryHealthSample S;
  S.Traps = Traps;
  S.Shed = Shed;
  S.LazyFailed = LazyFailed;
  S.Responses = Responses;
  S.LatencySumTicks = LatencySum;
  return S;
}

bool breached(const std::vector<CanaryBreach> &Bs, const std::string &Monitor) {
  for (const CanaryBreach &B : Bs)
    if (B.Monitor == Monitor)
      return true;
  return false;
}

} // namespace

TEST(CanaryHealth, TrapDeltaAgainstBudget) {
  CanaryPolicy P; // MaxTrapDelta = 0: any trap reverts
  CanaryHealthSample Base = sample(3, 0, 0, 0, 0);
  CanaryHealthSample Arm = sample(3, 0, 0, 0, 0);
  EXPECT_TRUE(breached(
      evaluateCanaryHealth(P, Base, Arm, sample(4, 0, 0, 0, 0)), "traps"));
  EXPECT_TRUE(evaluateCanaryHealth(P, Base, Arm, Arm).empty());
  P.MaxTrapDelta = 2;
  EXPECT_FALSE(breached(
      evaluateCanaryHealth(P, Base, Arm, sample(5, 0, 0, 0, 0)), "traps"));
  EXPECT_TRUE(breached(
      evaluateCanaryHealth(P, Base, Arm, sample(6, 0, 0, 0, 0)), "traps"));
  P.MaxTrapDelta = -1; // disabled
  EXPECT_TRUE(
      evaluateCanaryHealth(P, Base, Arm, sample(50, 0, 0, 0, 0)).empty());
}

TEST(CanaryHealth, FailedTransformsBreach) {
  CanaryPolicy P; // MaxFailedTransforms = 0
  CanaryHealthSample Zero = sample(0, 0, 0, 0, 0);
  EXPECT_TRUE(breached(
      evaluateCanaryHealth(P, Zero, Zero, sample(0, 0, 1, 0, 0)),
      "failed-transforms"));
}

TEST(CanaryHealth, ShedIsOptIn) {
  CanaryPolicy P; // MaxShedDelta = -1: not monitored by default
  CanaryHealthSample Zero = sample(0, 0, 0, 0, 0);
  EXPECT_TRUE(
      evaluateCanaryHealth(P, Zero, Zero, sample(0, 10, 0, 0, 0)).empty());
  P.MaxShedDelta = 0;
  EXPECT_TRUE(breached(
      evaluateCanaryHealth(P, Zero, Zero, sample(0, 10, 0, 0, 0)), "shed"));
}

TEST(CanaryHealth, LatencyComparedToPreUpdateBaseline) {
  CanaryPolicy P; // MaxLatencyDeltaPct = -1: off by default
  // Baseline mean 10 ticks over 100 responses.
  CanaryHealthSample Base = sample(0, 0, 0, 100, 1'000);
  CanaryHealthSample Arm = Base;
  // Window: 100 more responses at mean 16 (+60%).
  CanaryHealthSample Slow = sample(0, 0, 0, 200, 1'000 + 1'600);
  EXPECT_TRUE(evaluateCanaryHealth(P, Base, Arm, Slow).empty());
  P.MaxLatencyDeltaPct = 50;
  EXPECT_TRUE(breached(evaluateCanaryHealth(P, Base, Arm, Slow), "latency"));
  // Window mean 12 (+20%) stays within the 50% budget.
  CanaryHealthSample Ok = sample(0, 0, 0, 200, 1'000 + 1'200);
  EXPECT_TRUE(evaluateCanaryHealth(P, Base, Arm, Ok).empty());
  // No window traffic: nothing to judge.
  EXPECT_TRUE(evaluateCanaryHealth(P, Base, Arm, Arm).empty());
}

//===----------------------------------------------------------------------===//
// End-to-end reverts.
//===----------------------------------------------------------------------===//

TEST(Canary, ExplicitRevertRestoresRemovedState) {
  VM TheVM(smallConfig());
  bootV1(TheVM);

  Updater U(TheVM);
  UpdateResult Fwd =
      U.applyNow(Upt::prepare(canaryV1(), canaryV2(), "v1"), canaryOpts());
  ASSERT_EQ(Fwd.Status, UpdateStatus::Applied) << Fwd.Message;
  EXPECT_TRUE(Fwd.CanaryArmed);
  ASSERT_NE(controller(TheVM), nullptr);
  EXPECT_TRUE(controller(TheVM)->windowOpen());
  EXPECT_EQ(TheVM.callStatic("Probe", "grade", "()I").IntVal, 5);
  EXPECT_EQ(TheVM.registry().idOf("Legacy"), InvalidClassId);

  UpdateResult Rev = U.revert("operator says no");
  expectFullyReverted(TheVM, Rev);
  EXPECT_NE(Rev.Message.find("operator says no"), std::string::npos);
}

TEST(Canary, InjectedHealthBreachAutoReverts) {
  VM TheVM(smallConfig());
  bootV1(TheVM);

  Updater U(TheVM);
  UpdateResult Fwd = U.applyNow(Upt::prepare(canaryV1(), canaryV2(), "v1"),
                                canaryOpts(100'000'000, 500));
  ASSERT_EQ(Fwd.Status, UpdateStatus::Applied) << Fwd.Message;
  ASSERT_TRUE(Fwd.CanaryArmed);

  // The next health check probes this site and opens a revert; the canary
  // watchdog keeps the virtual clock moving on the otherwise idle VM.
  TheVM.faults().arm(FaultInjector::Site::CanaryHealthBreach, 1);
  CanaryController *Ctl = controller(TheVM);
  for (int Round = 0; Ctl->windowOpen() && Round < 1'000; ++Round)
    TheVM.run(10'000);

  expectFullyReverted(TheVM, Ctl->revertResult());
  CanaryReport Rep = Ctl->report();
  ASSERT_FALSE(Rep.Breaches.empty());
  EXPECT_EQ(Rep.Breaches.front().Monitor, "fault-injector");
  EXPECT_GE(Rep.ChecksRun, 1u);
}

TEST(Canary, HealthyWindowRetiresAndRevertIsThenRefused) {
  VM TheVM(smallConfig());
  bootV1(TheVM);

  Updater U(TheVM);
  UpdateResult Fwd = U.applyNow(Upt::prepare(canaryV1(), canaryV2(), "v1"),
                                canaryOpts(3'000, 500));
  ASSERT_EQ(Fwd.Status, UpdateStatus::Applied) << Fwd.Message;
  ASSERT_TRUE(Fwd.CanaryArmed);

  CanaryController *Ctl = controller(TheVM);
  for (int Round = 0; Ctl->windowOpen() && Round < 1'000; ++Round)
    TheVM.run(1'000);
  EXPECT_EQ(Ctl->state(), CanaryState::Retired);

  // The update stands; the undo log is gone, so a late revert is refused.
  EXPECT_EQ(TheVM.callStatic("Probe", "grade", "()I").IntVal, 5);
  UpdateResult Rev = U.revert("too late");
  EXPECT_EQ(Rev.Status, UpdateStatus::RevertFailed);
  EXPECT_EQ(TheVM.callStatic("Probe", "grade", "()I").IntVal, 5);
}

TEST(Canary, LazyForwardCommitStillRevertsWhole) {
  VM TheVM(smallConfig());
  bootV1(TheVM);

  UpdateOptions Opts = canaryOpts();
  Opts.LazyTransform = true;
  Updater U(TheVM);
  UpdateResult Fwd =
      U.applyNow(Upt::prepare(canaryV1(), canaryV2(), "v1"), Opts);
  ASSERT_EQ(Fwd.Status, UpdateStatus::Applied) << Fwd.Message;
  ASSERT_TRUE(Fwd.CanaryArmed);

  // Revert before any read barrier fires: the reverse update drains the
  // lazy engine first, then reinstates v1 eagerly and completely.
  UpdateResult Rev = U.revert("lazy rollback");
  expectFullyReverted(TheVM, Rev);
}

TEST(Canary, CustomInverseTransformerIsTrusted) {
  VM TheVM(smallConfig());
  bootV1(TheVM);

  UpdateBundle B = Upt::prepare(canaryV1(), canaryV2(), "v1");
  // A registered inverse replaces both the default copy-back and the
  // undo-log restore: whatever it writes is the post-revert truth.
  B.InverseObjectTransformers["Box"] = [](TransformCtx &Ctx, Ref To,
                                          Ref From) {
    Ctx.setInt(To, "val", Ctx.getInt(From, "val") * 2);
    Ctx.setInt(To, "secret", 77);
  };
  Updater U(TheVM);
  UpdateResult Fwd = U.applyNow(std::move(B), canaryOpts());
  ASSERT_EQ(Fwd.Status, UpdateStatus::Applied) << Fwd.Message;

  UpdateResult Rev = U.revert("use the inverse");
  ASSERT_EQ(Rev.Status, UpdateStatus::Reverted) << Rev.Message;
  EXPECT_EQ(TheVM.callStatic("Probe", "val", "()I").IntVal, 14);
  EXPECT_EQ(TheVM.callStatic("Probe", "secret", "()I").IntVal, 77);
  // Statics still restore from the undo log (no class inverse given).
  EXPECT_EQ(legacyTuning(TheVM), 99);
  expectHeapClean(TheVM, "after inverse-transformer revert");
}

//===----------------------------------------------------------------------===//
// Stacked updates during the window.
//===----------------------------------------------------------------------===//

TEST(Canary, StackedUpdateSettlesObservingWindow) {
  VM TheVM(smallConfig());
  bootV1(TheVM);

  Updater U1(TheVM);
  UpdateResult Fwd =
      U1.applyNow(Upt::prepare(canaryV1(), canaryV2(5), "v1"), canaryOpts());
  ASSERT_EQ(Fwd.Status, UpdateStatus::Applied) << Fwd.Message;
  ASSERT_TRUE(controller(TheVM)->windowOpen());

  // A second update while the first is still observing supersedes it:
  // the window settles (the operator has vouched by stacking) and the
  // new update proceeds normally.
  Updater U2(TheVM);
  UpdateResult Next =
      U2.applyNow(Upt::prepare(canaryV2(5), canaryV2(6), "v2"));
  ASSERT_EQ(Next.Status, UpdateStatus::Applied) << Next.Message;
  EXPECT_EQ(controller(TheVM)->state(), CanaryState::Retired);
  EXPECT_EQ(TheVM.callStatic("Probe", "grade", "()I").IntVal, 6);
  expectHeapClean(TheVM, "after stacked update");
}

TEST(Canary, StackedUpdateDuringRevertIsRefused) {
  VM TheVM(smallConfig());
  bootV1(TheVM);

  Updater U1(TheVM);
  UpdateResult Fwd =
      U1.applyNow(Upt::prepare(canaryV1(), canaryV2(5), "v1"), canaryOpts());
  ASSERT_EQ(Fwd.Status, UpdateStatus::Applied) << Fwd.Message;

  // Open the revert but do not drive it to completion yet.
  CanaryController *Ctl = controller(TheVM);
  ASSERT_TRUE(Ctl->requestRevert("operator revert"));
  ASSERT_EQ(Ctl->state(), CanaryState::Reverting);

  // While the old version is on its way back, new updates are refused —
  // they would race the reverse transformation.
  Updater U2(TheVM);
  U2.schedule(Upt::prepare(canaryV2(5), canaryV2(6), "v2"));
  EXPECT_EQ(U2.result().Status, UpdateStatus::RejectedCanaryBusy);

  // The revert itself still completes.
  for (int Round = 0; Ctl->windowOpen() && Round < 1'000; ++Round)
    TheVM.run(10'000);
  expectFullyReverted(TheVM, Ctl->revertResult());
}

//===----------------------------------------------------------------------===//
// Second-order faults (fault inside the revert).
//===----------------------------------------------------------------------===//

/// A fault that lands while the revert is already running must resolve to
/// a defined terminal state — RevertFailed when it breaks the reverse
/// path, never a window stuck observing/reverting or a corrupted heap.
/// A recording pass with only the health breach armed captures, via
/// probesAtFirstFire(), how many times each nested site was probed before
/// the breach fired; every later probe index lands inside the revert.
TEST(Canary, FaultDuringRevertResolvesToDefinedTerminalState) {
  using Site = FaultInjector::Site;

  FaultInjector::SiteCounts Lo{}, Hi{};
  {
    VM Rec(smallConfig());
    bootV1(Rec);
    Updater U(Rec);
    UpdateResult Fwd = U.applyNow(Upt::prepare(canaryV1(), canaryV2(), "v1"),
                                  canaryOpts(100'000'000, 500));
    ASSERT_EQ(Fwd.Status, UpdateStatus::Applied) << Fwd.Message;
    Rec.faults().arm(Site::CanaryHealthBreach, 1);
    CanaryController *Ctl = controller(Rec);
    for (int Round = 0; Ctl->windowOpen() && Round < 1'000; ++Round)
      Rec.run(10'000);
    ASSERT_EQ(Ctl->state(), CanaryState::Reverted);
    Lo = Rec.faults().probesAtFirstFire();
    Hi = Rec.faults().probeCounts();
  }

  size_t Window = 0;
  size_t RevertsBroken = 0;
  for (Site Nested : {Site::ClassLoad, Site::TransformerNthObject}) {
    size_t N = static_cast<size_t>(Nested);
    // arm() zeroes the site's probe counter, so arming right where the
    // recording pass armed the breach makes skips relative to that point:
    // the revert's own probes are indices [0, Hi - Lo).
    for (uint64_t Skip = 0; Skip < Hi[N] - Lo[N]; ++Skip, ++Window) {
      SCOPED_TRACE(std::string("nested ") + FaultInjector::siteName(Nested) +
                   " skip=" + std::to_string(Skip));
      VM TheVM(smallConfig());
      bootV1(TheVM);
      Updater U(TheVM);
      UpdateResult Fwd = U.applyNow(Upt::prepare(canaryV1(), canaryV2(), "v1"),
                                    canaryOpts(100'000'000, 500));
      ASSERT_EQ(Fwd.Status, UpdateStatus::Applied) << Fwd.Message;

      TheVM.faults().arm(Site::CanaryHealthBreach, 1);
      TheVM.faults().arm(Nested, 1, Skip);
      CanaryController *Ctl = controller(TheVM);
      for (int Round = 0; Ctl->windowOpen() && Round < 1'000; ++Round)
        TheVM.run(10'000);

      ASSERT_GT(TheVM.faults().fireCounts()[N], 0u);
      EXPECT_FALSE(Ctl->windowOpen());
      CanaryState Terminal = Ctl->state();
      ASSERT_TRUE(Terminal == CanaryState::RevertFailed ||
                  Terminal == CanaryState::Reverted)
          << "state " << canaryStateName(Terminal);
      if (Terminal == CanaryState::RevertFailed) {
        ++RevertsBroken;
        EXPECT_EQ(Ctl->revertResult().Status, UpdateStatus::RevertFailed);
      } else {
        expectFullyReverted(TheVM, Ctl->revertResult());
      }
      expectHeapClean(TheVM, "after fault-during-revert");
    }
  }
  // The revert reinstalls classes and re-transforms objects, so both
  // nested windows must be non-empty and at least one injection must have
  // actually broken the reverse path.
  EXPECT_GT(Window, 0u);
  EXPECT_GT(RevertsBroken, 0u);
}
