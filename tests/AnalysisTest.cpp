//===----------------------------------------------------------------------===//
///
/// \file
/// Static update-safety analyzer tests: CHA call-graph construction, the
/// transitive-caller closure vs the precise inline-aware restriction
/// (subset proven on every modeled release stream), never-returns
/// detection, ActiveMethodMapping static checking, the applicability
/// verdict against all 22 Tables 2-4 rows, and the Updater's AnalyzeFirst
/// pre-update gate.
///
//===----------------------------------------------------------------------===//

#include "apps/CrossFtpApp.h"
#include "apps/EmailApp.h"
#include "apps/JettyApp.h"
#include "bytecode/Builder.h"
#include "bytecode/Builtins.h"
#include "dsu/Analysis.h"
#include "dsu/CallGraph.h"
#include "dsu/Updater.h"
#include "dsu/Upt.h"
#include "support/Telemetry.h"

#include <gtest/gtest.h>

using namespace jvolve;

namespace {

/// A server with a tiny inlinable helper, a too-big helper, a direct-call
/// chain, and an infinite dispatch loop — the shapes the analyses classify.
ClassSet loopBase() {
  ClassSet Set;
  ClassBuilder Conf("Conf");
  Conf.staticField("x", "I");
  Conf.staticMethod("get", "()I").getstatic("Conf", "x", "I").iret();
  Set.add(Conf.build());

  ClassBuilder S("Server");
  S.staticMethod("tiny", "()I").iconst(1).iret();
  S.staticMethod("mid", "()I").invokestatic("Server", "tiny", "()I").iret();
  MethodBuilder &Big = S.staticMethod("big", "()I");
  for (int I = 0; I < 9; ++I)
    Big.iconst(I).pop();
  Big.iconst(0).iret(); // 20 instructions: over MaxInlineCodeLen
  S.staticMethod("d1", "()I").invokestatic("Server", "d2", "()I").iret();
  S.staticMethod("d2", "()I").invokestatic("Server", "d3", "()I").iret();
  S.staticMethod("d3", "()I").invokestatic("Server", "d4", "()I").iret();
  S.staticMethod("d4", "()I").invokestatic("Server", "tiny", "()I").iret();
  S.staticMethod("loop", "()V")
      .label("top")
      .invokestatic("Server", "tiny", "()I")
      .pop()
      .jump("top");
  S.staticMethod("confLoop", "()V")
      .label("top")
      .invokestatic("Conf", "get", "()I")
      .pop()
      .jump("top");
  Set.add(S.build());
  ensureBuiltins(Set);
  return Set;
}

ClassSet chaSet() {
  ClassSet Set;
  ClassBuilder B("Base");
  B.method("m", "()V").ret();
  Set.add(B.build());
  ClassBuilder D("Derived", "Base");
  D.method("m", "()V").ret();
  Set.add(D.build());
  ClassBuilder C("Caller");
  C.staticMethod("call", "(LBase;)V")
      .load(0)
      .invokevirtual("Base", "m", "()V")
      .ret();
  Set.add(C.build());
  ensureBuiltins(Set);
  return Set;
}

void appendNop(ClassSet &Set, const char *Cls, const char *Method) {
  Set.find(Cls)->findMethod(Method)->Code.push_back(
      {Opcode::Nop, 0, "", "", ""});
}

std::set<std::string> entryPointsFor(const AppModel &App) {
  if (App.name() == "jetty")
    return {"PoolThread.run(I)V"};
  if (App.name() == "javaemailserver")
    return {"Pop3Processor.run(I)V", "SMTPSender.run()V"};
  return {"FtpServer.run(I)V"};
}

Applicability expectedVerdict(const Release &R) {
  if (!R.ExpectSupported)
    return Applicability::Impossible;
  if (R.NeedsOsr)
    return Applicability::NeedsOsr;
  return Applicability::Applicable;
}

/// Runs the analyzer over the update to version \p V of \p App, exactly as
/// jvolve-analyze --app does.
AnalysisReport analyzeRelease(const AppModel &App, size_t V) {
  ClassSet Old = App.version(V - 1);
  ClassSet New = App.version(V);
  ensureBuiltins(Old);
  ensureBuiltins(New);
  UpdateSpec Spec = Upt::computeSpec(Old, New);
  AnalysisOptions Opts;
  Opts.EntryPoints = entryPointsFor(App);
  return UpdateAnalysis(Old, New).analyze(Spec, {}, Opts);
}

bool containsStr(const std::vector<std::string> &V, const std::string &S) {
  for (const std::string &X : V)
    if (X == S)
      return true;
  return false;
}

} // namespace

//===----------------------------------------------------------------------===//
// Call graph
//===----------------------------------------------------------------------===//

TEST(CallGraph, DirectCallsResolveToDeclaringClass) {
  ClassSet Set = loopBase();
  CallGraph CG(Set);
  const CallGraphNode *Mid = CG.node("Server.mid()I");
  ASSERT_NE(Mid, nullptr);
  ASSERT_EQ(Mid->Callees.size(), 1u);
  EXPECT_EQ(Mid->Callees[0], "Server.tiny()I");
  EXPECT_EQ(Mid->DirectCallees, Mid->Callees);
  EXPECT_GT(CG.numMethods(), 0u);
  EXPECT_GT(CG.numEdges(), 0u);
}

TEST(CallGraph, VirtualDispatchFansOutOverSubclassOverrides) {
  ClassSet Set = chaSet();
  CallGraph CG(Set);
  const CallGraphNode *Call = CG.node("Caller.call(LBase;)V");
  ASSERT_NE(Call, nullptr);
  EXPECT_EQ(Call->Callees.size(), 2u); // Base.m and Derived.m
  EXPECT_TRUE(containsStr(Call->Callees, "Base.m()V"));
  EXPECT_TRUE(containsStr(Call->Callees, "Derived.m()V"));
  // Virtual calls never inline: no direct edges.
  EXPECT_TRUE(Call->DirectCallees.empty());
}

TEST(CallGraph, TransitiveCallersIsTheConservativeClosure) {
  ClassSet Set = loopBase();
  CallGraph CG(Set);
  std::set<std::string> Closed = CG.transitiveCallers({"Server.tiny()I"});
  // Seeds themselves, direct callers, and the whole d-chain.
  for (const char *K : {"Server.tiny()I", "Server.mid()I", "Server.loop()V",
                        "Server.d1()I", "Server.d2()I", "Server.d3()I",
                        "Server.d4()I"})
    EXPECT_TRUE(Closed.count(K)) << K;
  EXPECT_FALSE(Closed.count("Server.big()I"));
  EXPECT_FALSE(Closed.count("Server.confLoop()V"));
}

TEST(CallGraph, PossibleInlinersHonorSizeLimit) {
  ClassSet Set = loopBase();
  CallGraph CG(Set);
  // tiny (2 instructions) can be inlined by its direct callers...
  std::set<std::string> In = CG.possibleInliners({"Server.tiny()I"}, 16, 3);
  EXPECT_TRUE(In.count("Server.mid()I"));
  EXPECT_TRUE(In.count("Server.loop()V"));
  // ...but big (20 instructions) can never be inlined at all.
  EXPECT_TRUE(CG.possibleInliners({"Server.big()I"}, 16, 3).empty());
}

TEST(CallGraph, PossibleInlinersHonorDepthLimit) {
  ClassSet Set = loopBase();
  CallGraph CG(Set);
  // d1 -> d2 -> d3 -> d4 -> tiny: with MaxDepth 3 the chain stops at d2
  // (tiny into d4, d4 into d3, d3 into d2).
  std::set<std::string> In = CG.possibleInliners({"Server.tiny()I"}, 16, 3);
  EXPECT_TRUE(In.count("Server.d4()I"));
  EXPECT_TRUE(In.count("Server.d3()I"));
  EXPECT_TRUE(In.count("Server.d2()I"));
  EXPECT_FALSE(In.count("Server.d1()I"));
}

TEST(CallGraph, VirtualCalleesAreNotInlinable) {
  ClassSet Set = chaSet();
  CallGraph CG(Set);
  EXPECT_TRUE(CG.possibleInliners({"Base.m()V"}, 16, 3).empty());
  // The closure still restricts the virtual caller.
  EXPECT_TRUE(CG.transitiveCallers({"Base.m()V"})
                  .count("Caller.call(LBase;)V"));
}

//===----------------------------------------------------------------------===//
// Never-returns + verdicts on toy programs
//===----------------------------------------------------------------------===//

TEST(Analysis, NeverReturnsDetection) {
  ClassSet Set = loopBase();
  EXPECT_TRUE(UpdateAnalysis::neverReturns(
      *Set.find("Server")->findMethod("loop")));
  EXPECT_TRUE(UpdateAnalysis::neverReturns(
      *Set.find("Server")->findMethod("confLoop")));
  EXPECT_FALSE(UpdateAnalysis::neverReturns(
      *Set.find("Server")->findMethod("tiny")));
  EXPECT_FALSE(UpdateAnalysis::neverReturns(
      *Set.find("Server")->findMethod("mid")));
}

TEST(Analysis, ChangedNonReturningLoopPredictsImpossible) {
  ClassSet Old = loopBase(), New = loopBase();
  appendNop(New, "Server", "loop");
  UpdateSpec Spec = Upt::computeSpec(Old, New);
  AnalysisOptions Opts;
  Opts.EntryPoints = {"Server.loop()V"};
  AnalysisReport R = UpdateAnalysis(Old, New).analyze(Spec, {}, Opts);
  EXPECT_EQ(R.Verdict, Applicability::Impossible);
  EXPECT_TRUE(containsStr(R.PinnedForever, "Server.loop()V"));
  EXPECT_NE(R.Reason.find("Server.loop()V"), std::string::npos);
}

TEST(Analysis, EntryUnreachableLoopDoesNotGate) {
  ClassSet Old = loopBase(), New = loopBase();
  appendNop(New, "Server", "loop");
  UpdateSpec Spec = Upt::computeSpec(Old, New);
  AnalysisOptions Opts;
  Opts.EntryPoints = {"Server.mid()I"}; // mid never reaches loop
  AnalysisReport R = UpdateAnalysis(Old, New).analyze(Spec, {}, Opts);
  EXPECT_EQ(R.Verdict, Applicability::Applicable);
  EXPECT_TRUE(R.PinnedForever.empty());
}

TEST(Analysis, IndirectNonReturningLoopPredictsNeedsOsr) {
  ClassSet Old = loopBase(), New = loopBase();
  // Class update to Conf: confLoop is unchanged but category (2).
  New.find("Conf")->Fields.push_back(
      {"y", "I", true, false, Access::Public});
  UpdateSpec Spec = Upt::computeSpec(Old, New);
  AnalysisOptions Opts;
  Opts.EntryPoints = {"Server.confLoop()V"};
  AnalysisReport R = UpdateAnalysis(Old, New).analyze(Spec, {}, Opts);
  EXPECT_EQ(R.Verdict, Applicability::NeedsOsr);
  EXPECT_TRUE(containsStr(R.OsrRequired, "Server.confLoop()V"));
}

TEST(Analysis, ChangedReturningMethodIsApplicable) {
  ClassSet Old = loopBase(), New = loopBase();
  appendNop(New, "Server", "tiny");
  UpdateSpec Spec = Upt::computeSpec(Old, New);
  AnalysisOptions Opts;
  Opts.EntryPoints = {"Server.loop()V"}; // loop calls tiny forever
  AnalysisReport R = UpdateAnalysis(Old, New).analyze(Spec, {}, Opts);
  // tiny returns, so a return barrier reaches the safe point eventually.
  EXPECT_EQ(R.Verdict, Applicability::Applicable);
}

//===----------------------------------------------------------------------===//
// Restricted safe-point sets
//===----------------------------------------------------------------------===//

TEST(Analysis, PreciseRestrictionDropsNonInliningCallers) {
  ClassSet Old = loopBase(), New = loopBase();
  appendNop(New, "Server", "big");
  UpdateSpec Spec = Upt::computeSpec(Old, New);
  AnalysisReport R = UpdateAnalysis(Old, New).analyze(Spec, {}, {});
  // big is too large to inline anywhere: only big itself is restricted
  // precisely, while the conservative closure would also restrict its
  // callers (it has none here, so sizes match), and the seed stays.
  EXPECT_TRUE(R.PreciseRestricted.count("Server.big()I"));
  for (const std::string &K : R.PreciseRestricted)
    EXPECT_TRUE(R.ConservativeRestricted.count(K)) << K;
}

TEST(Analysis, PreciseSubsetOfConservativeOnEveryStream) {
  const AppModel Apps[] = {makeJettyApp(), makeEmailApp(),
                           makeCrossFtpApp()};
  size_t Streams = 0;
  for (const AppModel &App : Apps) {
    for (size_t V = 1; V < App.numVersions(); ++V) {
      AnalysisReport R = analyzeRelease(App, V);
      std::string Tag = App.name() + " " + App.versionName(V);
      EXPECT_LE(R.PreciseRestricted.size(), R.ConservativeRestricted.size())
          << Tag;
      for (const std::string &K : R.PreciseRestricted)
        EXPECT_TRUE(R.ConservativeRestricted.count(K))
            << Tag << ": " << K << " is precisely restricted but not in "
            << "the conservative blacklist";
      ++Streams;
    }
  }
  EXPECT_EQ(Streams, 22u);
}

//===----------------------------------------------------------------------===//
// The Tables 2-4 applicability column, predicted
//===----------------------------------------------------------------------===//

TEST(Analysis, AllTwentyTwoStreamsMatchTables) {
  const AppModel Apps[] = {makeJettyApp(), makeEmailApp(),
                           makeCrossFtpApp()};
  size_t Streams = 0;
  int Impossible = 0;
  for (const AppModel &App : Apps) {
    for (size_t V = 1; V < App.numVersions(); ++V) {
      AnalysisReport R = analyzeRelease(App, V);
      const Release &Rel = App.release(V);
      std::string Tag = App.name() + " " + App.versionName(V);
      EXPECT_EQ(R.Verdict, expectedVerdict(Rel))
          << Tag << ": predicted " << applicabilityName(R.Verdict)
          << "\n" << R.table();
      if (R.Verdict == Applicability::Impossible)
        ++Impossible;
      ++Streams;
    }
  }
  EXPECT_EQ(Streams, 22u);
  EXPECT_EQ(Impossible, 2); // exactly Jetty 5.1.3 and JES 1.3
}

TEST(Analysis, ImpossibleUpdatesNameTheLoopingMethod) {
  AppModel Jetty = makeJettyApp();
  AnalysisReport R513 = analyzeRelease(Jetty, 3); // 5.1.2 -> 5.1.3
  EXPECT_EQ(R513.Verdict, Applicability::Impossible);
  EXPECT_TRUE(containsStr(R513.PinnedForever, "PoolThread.run(I)V"))
      << R513.table();
  EXPECT_NE(R513.Reason.find("PoolThread.run(I)V"), std::string::npos);

  AppModel Jes = makeEmailApp();
  AnalysisReport R13 = analyzeRelease(Jes, 4); // 1.2.4 -> 1.3
  EXPECT_EQ(R13.Verdict, Applicability::Impossible);
  EXPECT_TRUE(containsStr(R13.PinnedForever, "Pop3Processor.run(I)V"))
      << R13.table();
  EXPECT_TRUE(containsStr(R13.PinnedForever, "SMTPSender.run()V"));
}

TEST(Analysis, CrossFtpSessionHandlerWarnsOnlyWhenIdle) {
  AppModel Ftp = makeCrossFtpApp();
  AnalysisReport R = analyzeRelease(Ftp, 3); // 1.07 -> 1.08
  EXPECT_EQ(R.Verdict, Applicability::Applicable);
  bool Warned = false;
  for (const std::string &W : R.Warnings)
    Warned |= W.find("RequestHandler.handle(I)V") != std::string::npos;
  EXPECT_TRUE(Warned) << R.table();
}

//===----------------------------------------------------------------------===//
// ActiveMethodMapping static checking
//===----------------------------------------------------------------------===//

TEST(Analysis, CompleteCompatibleMappingLiftsPinnedMethod) {
  ClassSet Old = loopBase(), New = loopBase();
  appendNop(New, "Server", "loop");
  UpdateSpec Spec = Upt::computeSpec(Old, New);
  std::map<std::string, ActiveMethodMapping> Maps;
  ActiveMethodMapping M = ActiveMethodMapping::identity(
      {"Server", "loop", "()V"},
      New.find("Server")->findMethod("loop")->Code.size());
  Maps[M.Method.key()] = M;
  AnalysisOptions Opts;
  Opts.EntryPoints = {"Server.loop()V"};
  AnalysisReport R = UpdateAnalysis(Old, New).analyze(Spec, Maps, Opts);
  EXPECT_EQ(R.Verdict, Applicability::Applicable) << R.table();
  EXPECT_TRUE(R.MappingIssues.empty()) << R.table();
}

TEST(Analysis, IncompleteMappingDoesNotLift) {
  ClassSet Old = loopBase(), New = loopBase();
  appendNop(New, "Server", "loop");
  UpdateSpec Spec = Upt::computeSpec(Old, New);
  std::map<std::string, ActiveMethodMapping> Maps;
  ActiveMethodMapping M;
  M.Method = {"Server", "loop", "()V"};
  M.PcMap = {{0, 0}}; // reachable pcs 1.. are unmapped
  Maps[M.Method.key()] = M;
  AnalysisOptions Opts;
  Opts.EntryPoints = {"Server.loop()V"};
  AnalysisReport R = UpdateAnalysis(Old, New).analyze(Spec, Maps, Opts);
  EXPECT_EQ(R.Verdict, Applicability::Impossible);
  ASSERT_FALSE(R.MappingIssues.empty());
  EXPECT_NE(R.MappingIssues[0].find("unmapped"), std::string::npos);
}

TEST(Analysis, MappingStackHeightMismatchIsReported) {
  ClassSet Old, New;
  ClassBuilder O("T");
  O.staticMethod("m", "()V").iconst(1).pop().ret();
  Old.add(O.build());
  ClassBuilder N("T");
  N.staticMethod("m", "()V").ret();
  New.add(N.build());
  ensureBuiltins(Old);
  ensureBuiltins(New);
  UpdateSpec Spec = Upt::computeSpec(Old, New);
  std::map<std::string, ActiveMethodMapping> Maps;
  ActiveMethodMapping M;
  M.Method = {"T", "m", "()V"};
  M.PcMap = {{0, 0}, {1, 0}, {2, 0}}; // old pc 1 has [int]; new pc 0 has []
  Maps[M.Method.key()] = M;
  AnalysisReport R = UpdateAnalysis(Old, New).analyze(Spec, Maps, {});
  bool Found = false;
  for (const std::string &I : R.MappingIssues)
    Found |= I.find("stack height mismatch") != std::string::npos;
  EXPECT_TRUE(Found) << R.table();
}

TEST(Analysis, MappingSlotTypeMismatchIsReported) {
  ClassSet Old, New;
  ClassBuilder O("T");
  O.staticMethod("m", "()V").iconst(1).pop().ret();
  Old.add(O.build());
  ClassBuilder N("T");
  N.staticMethod("m", "()V").nullconst().pop().ret();
  New.add(N.build());
  ensureBuiltins(Old);
  ensureBuiltins(New);
  UpdateSpec Spec = Upt::computeSpec(Old, New);
  std::map<std::string, ActiveMethodMapping> Maps;
  ActiveMethodMapping M;
  M.Method = {"T", "m", "()V"};
  M.PcMap = {{0, 0}, {1, 1}, {2, 2}}; // old pc 1 holds int, new expects null
  Maps[M.Method.key()] = M;
  AnalysisReport R = UpdateAnalysis(Old, New).analyze(Spec, Maps, {});
  bool Found = false;
  for (const std::string &I : R.MappingIssues)
    Found |= I.find("stack slot") != std::string::npos;
  EXPECT_TRUE(Found) << R.table();
}

//===----------------------------------------------------------------------===//
// Metrics
//===----------------------------------------------------------------------===//

TEST(Analysis, RecordsRestrictionDeltaMetrics) {
  Telemetry &Tel = Telemetry::global();
  bool Was = Telemetry::isEnabled();
  Tel.setEnabled(true);
  AnalysisReport R;
  R.ConservativeRestricted = {"A.a()V", "B.b()V", "C.c()V"};
  R.PreciseRestricted = {"A.a()V"};
  R.Verdict = Applicability::Impossible;
  recordAnalysisMetrics(R);
  EXPECT_GE(Tel.counter(metrics::DsuAnalysisRuns).value(), 1u);
  EXPECT_GE(Tel.counter(metrics::DsuAnalysisRejected).value(), 1u);
  EXPECT_EQ(Tel.gauge(metrics::DsuAnalysisRestrictedConservative).value(), 3);
  EXPECT_EQ(Tel.gauge(metrics::DsuAnalysisRestrictedPrecise).value(), 1);
  EXPECT_EQ(Tel.gauge(metrics::DsuAnalysisRestrictedDelta).value(), 2);
  Tel.setEnabled(Was);
}

//===----------------------------------------------------------------------===//
// The Updater's AnalyzeFirst gate
//===----------------------------------------------------------------------===//

TEST(AnalysisGate, RefusesPredictedImpossibleBeforeAnyPauseAttempt) {
  AppModel App = makeJettyApp();
  VM::Config Cfg;
  Cfg.HeapSpaceBytes = 16u << 20;
  VM TheVM(Cfg);
  TheVM.loadProgram(App.version(2)); // 5.1.2
  startJettyThreads(TheVM);
  TheVM.run(5'000); // pool threads enter their accept loops

  UpdateBundle B = Upt::prepare(App.version(2), App.version(3), "g513");
  UpdateOptions Opts;
  Opts.AnalyzeFirst = true;
  Opts.TimeoutTicks = 50'000;
  Updater U(TheVM);
  UpdateResult R = U.applyNow(std::move(B), Opts);

  EXPECT_EQ(R.Status, UpdateStatus::RejectedByAnalysis);
  EXPECT_TRUE(R.AnalysisRan);
  EXPECT_EQ(R.Analysis.Verdict, Applicability::Impossible);
  // Refused before any pause was attempted: no burned safe-point attempt.
  EXPECT_EQ(R.SafePointAttempts, 0);
  EXPECT_NE(R.Message.find("PoolThread.run(I)V"), std::string::npos)
      << R.Message;
}

TEST(AnalysisGate, AllowsPredictedApplicableUpdateThrough) {
  AppModel App = makeJettyApp();
  VM::Config Cfg;
  Cfg.HeapSpaceBytes = 16u << 20;
  VM TheVM(Cfg);
  TheVM.loadProgram(App.version(0));
  startJettyThreads(TheVM);
  TheVM.run(5'000);

  UpdateBundle B = Upt::prepare(App.version(0), App.version(1), "g511");
  UpdateOptions Opts;
  Opts.AnalyzeFirst = true;
  Updater U(TheVM);
  UpdateResult R = U.applyNow(std::move(B), Opts);

  EXPECT_EQ(R.Status, UpdateStatus::Applied) << R.Message;
  EXPECT_TRUE(R.AnalysisRan);
  EXPECT_EQ(R.Analysis.Verdict, Applicability::Applicable);
}

TEST(AnalysisGate, MappingsFlipThePredictionAndTheUpdateApplies) {
  // The jvolve-serve retry path, in miniature: the 5.1.3 update is refused
  // by analysis, then re-prepared with the operator's pc maps — the
  // analyzer statically accepts them and the update goes through live.
  AppModel App = makeJettyApp();
  VM::Config Cfg;
  Cfg.HeapSpaceBytes = 16u << 20;
  VM TheVM(Cfg);
  TheVM.loadProgram(App.version(2));
  startJettyThreads(TheVM);
  TheVM.run(5'000);

  UpdateBundle B = Upt::prepare(App.version(2), App.version(3), "m513");
  ActiveMethodMapping Accept;
  Accept.Method = {"ThreadedServer", "acceptSocket", "(I)I"};
  Accept.PcMap = {{0, 0}, {1, 1}, {2, 4}};
  B.addActiveMapping(std::move(Accept));
  ActiveMethodMapping Run;
  Run.Method = {"PoolThread", "run", "(I)V"};
  Run.PcMap = {{0, 0}, {1, 1}, {2, 2}, {3, 3}, {4, 7}, {5, 8}};
  B.addActiveMapping(std::move(Run));

  UpdateOptions Opts;
  Opts.AnalyzeFirst = true;
  Updater U(TheVM);
  UpdateResult R = U.applyNow(std::move(B), Opts);

  EXPECT_TRUE(R.AnalysisRan);
  EXPECT_EQ(R.Analysis.Verdict, Applicability::Applicable)
      << R.Analysis.table();
  EXPECT_TRUE(R.Analysis.MappingIssues.empty()) << R.Analysis.table();
  EXPECT_EQ(R.Status, UpdateStatus::Applied) << R.Message;
  EXPECT_GT(R.ActiveFramesRemapped, 0);
}

//===----------------------------------------------------------------------===//
// Dataflow refinement of the precise restricted set
//===----------------------------------------------------------------------===//

TEST(Analysis, RefinedSetNestsInsideChaSetOnEveryStream) {
  // The acceptance bar for the dataflow refinement: on every stream the
  // refined precise set is a subset of the CHA-precise set (which in turn
  // nests inside the conservative closure), and on several streams the
  // receiver-points-to pruning makes it strictly smaller.
  const AppModel Apps[] = {makeJettyApp(), makeEmailApp(),
                           makeCrossFtpApp()};
  size_t Streams = 0, StrictlySmaller = 0;
  for (const AppModel &App : Apps) {
    for (size_t V = 1; V < App.numVersions(); ++V) {
      AnalysisReport R = analyzeRelease(App, V);
      std::string Tag = App.name() + " " + App.versionName(V);
      for (const std::string &K : R.PreciseRestricted)
        EXPECT_TRUE(R.PreciseRestrictedCha.count(K))
            << Tag << ": refined member " << K << " not in the CHA set";
      for (const std::string &K : R.PreciseRestrictedCha)
        EXPECT_TRUE(R.ConservativeRestricted.count(K))
            << Tag << ": CHA-precise member " << K
            << " not in the conservative closure";
      if (R.PreciseRestricted.size() < R.PreciseRestrictedCha.size())
        ++StrictlySmaller;
      ++Streams;
    }
  }
  EXPECT_EQ(Streams, 22u);
  EXPECT_GE(StrictlySmaller, 3u)
      << "the refinement should bite on at least three streams";
}

TEST(Analysis, NoEntryPointsMeansNoRefinement) {
  // Without entry points there is nothing sound to seed the dataflow
  // from, so the refined set must equal the CHA set exactly — never
  // smaller, which would be an unsound guess.
  const AppModel App = makeJettyApp();
  ClassSet Old = App.version(0);
  ClassSet New = App.version(1);
  ensureBuiltins(Old);
  ensureBuiltins(New);
  UpdateSpec Spec = Upt::computeSpec(Old, New);
  AnalysisReport R = UpdateAnalysis(Old, New).analyze(Spec, {}, {});
  EXPECT_EQ(R.PreciseRestricted, R.PreciseRestrictedCha);
  EXPECT_EQ(R.DataflowNarrowed, 0u);
}
