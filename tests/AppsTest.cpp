//===----------------------------------------------------------------------===//
///
/// \file
/// Application-model tests: version streams match Tables 2-4 exactly, the
/// servers serve traffic, and the flexibility behaviours the paper reports
/// (which updates apply, which need OSR, which time out, which apply only
/// when idle) reproduce end to end.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "apps/CrossFtpApp.h"
#include "apps/EmailApp.h"
#include "apps/Evaluation.h"
#include "apps/JettyApp.h"
#include "apps/Workload.h"
#include "dsu/Canary.h"
#include "dsu/EcUpdater.h"
#include "dsu/Updater.h"
#include "dsu/Upt.h"

#include <gtest/gtest.h>

using namespace jvolve;
using namespace jvolve::test;

namespace {

VM::Config appConfig() {
  VM::Config C;
  C.HeapSpaceBytes = 8u << 20;
  return C;
}

void expectStreamMatchesTable(const AppModel &App) {
  for (size_t V = 1; V < App.numVersions(); ++V) {
    UpdateSummary S =
        Upt::computeSpec(App.version(V - 1), App.version(V)).Summary;
    EXPECT_TRUE(summaryMatches(S, App.release(V).Target))
        << App.versionName(V) << ": " << describeSummary(S) << " vs "
        << describeCounts(App.release(V).Target);
  }
}

} // namespace

TEST(Apps, JettyStreamMatchesTable2) {
  AppModel App = makeJettyApp();
  EXPECT_EQ(App.numVersions(), 11u); // 5.1.0 .. 5.1.10
  expectStreamMatchesTable(App);
}

TEST(Apps, EmailStreamMatchesTable3) {
  AppModel App = makeEmailApp();
  EXPECT_EQ(App.numVersions(), 10u); // 1.2.1 .. 1.4
  expectStreamMatchesTable(App);
}

TEST(Apps, CrossFtpStreamMatchesTable4) {
  AppModel App = makeCrossFtpApp();
  EXPECT_EQ(App.numVersions(), 4u); // 1.05 .. 1.08
  expectStreamMatchesTable(App);
}

TEST(Apps, JettyServesRequests) {
  AppModel App = makeJettyApp();
  VM TheVM(appConfig());
  TheVM.loadProgram(App.version(0));
  startJettyThreads(TheVM);

  LoadDriver::Options LO;
  LO.Port = JettyPort;
  LoadDriver Driver(TheVM, LO);
  LoadResult R = Driver.measure(20'000);

  EXPECT_GT(R.Responses, 50u);
  EXPECT_GT(R.Throughput, 0.0);
  EXPECT_GT(R.LatencyTicks.Median, 0.0);
  EXPECT_GT(TheVM.callStatic("Stats", "served", "()I").IntVal, 0);
  // No thread trapped.
  for (auto &T : TheVM.scheduler().threads())
    EXPECT_NE(T->State, ThreadState::Trapped) << T->TrapMessage;
}

TEST(Apps, EmailServesRequests) {
  AppModel App = makeEmailApp();
  VM TheVM(appConfig());
  TheVM.loadProgram(App.version(0));
  startEmailThreads(TheVM);

  // One POP3 session with three requests; responses add the admin
  // account's forward count (1).
  TheVM.injectConnection(Pop3Port, {10, 20, 30});
  TheVM.run(20'000);
  std::vector<NetResponse> Rs = TheVM.net().drainResponses();
  ASSERT_EQ(Rs.size(), 3u);
  EXPECT_EQ(Rs[0].Value, 11);
  EXPECT_EQ(Rs[1].Value, 21);
  EXPECT_EQ(Rs[2].Value, 31);
}

TEST(Apps, CrossFtpServesSessions) {
  AppModel App = makeCrossFtpApp();
  VM TheVM(appConfig());
  TheVM.loadProgram(App.version(0));
  startCrossFtpThreads(TheVM);

  TheVM.injectConnection(FtpPort, {1, 2});
  TheVM.injectConnection(FtpPort, {3});
  TheVM.run(30'000);
  std::vector<NetResponse> Rs = TheVM.net().drainResponses();
  ASSERT_EQ(Rs.size(), 3u);
  // execute(r) = r*3 + 200.
  EXPECT_EQ(Rs[0].Value, 203);
}

TEST(Apps, JettyFirstUpdateAppliesUnderLoad) {
  AppModel App = makeJettyApp();
  VM TheVM(appConfig());
  TheVM.loadProgram(App.version(0));
  startJettyThreads(TheVM);

  LoadDriver::Options LO;
  LO.Port = JettyPort;
  LoadDriver Driver(TheVM, LO);
  Driver.runWithLoad(5'000);

  Updater U(TheVM);
  UpdateResult R =
      U.applyNow(Upt::prepare(App.version(0), App.version(1), "v510"));
  ASSERT_EQ(R.Status, UpdateStatus::Applied) << R.Message;

  // The server keeps serving after the update.
  LoadResult After = Driver.measure(10'000);
  EXPECT_GT(After.Responses, 20u);
  for (auto &T : TheVM.scheduler().threads())
    EXPECT_NE(T->State, ThreadState::Trapped) << T->TrapMessage;
}

TEST(Apps, Jetty513TimesOut) {
  AppModel App = makeJettyApp();
  VM TheVM(appConfig());
  TheVM.loadProgram(App.version(2)); // 5.1.2
  startJettyThreads(TheVM);

  LoadDriver::Options LO;
  LO.Port = JettyPort;
  LoadDriver Driver(TheVM, LO);
  Driver.runWithLoad(3'000);

  Updater U(TheVM);
  UpdateOptions Opts;
  Opts.TimeoutTicks = 60'000;
  UpdateResult R = U.applyNow(
      Upt::prepare(App.version(2), App.version(3), "v512"), Opts);
  EXPECT_EQ(R.Status, UpdateStatus::TimedOut);
  EXPECT_GE(R.ReturnBarriersInstalled, 1);

  // The aborted update leaves the old version serving.
  LoadResult After = Driver.measure(10'000);
  EXPECT_GT(After.Responses, 20u);
}

TEST(Apps, Jetty513AbortDiagnosesInfiniteLoop) {
  AppModel App = makeJettyApp();
  VM TheVM(appConfig());
  TheVM.loadProgram(App.version(2)); // 5.1.2
  startJettyThreads(TheVM);

  LoadDriver::Options LO;
  LO.Port = JettyPort;
  LoadDriver Driver(TheVM, LO);
  Driver.runWithLoad(3'000);

  Updater U(TheVM);
  UpdateOptions Opts;
  Opts.TimeoutTicks = 60'000;
  UpdateResult R = U.applyNow(
      Upt::prepare(App.version(2), App.version(3), "v512"), Opts);
  ASSERT_EQ(R.Status, UpdateStatus::TimedOut);
  EXPECT_EQ(R.ResolvedRung, QuiescenceRung::Abort);

  // Table 2's "would need a stack-frame transformer" update: the changed
  // PoolThread.run never leaves the stack, and the report says so by name.
  ASSERT_TRUE(R.Quiescence.diagnosed());
  std::vector<std::string> Loops = R.Quiescence.loopingMethods();
  bool Named = false;
  for (const std::string &M : Loops)
    Named = Named || M.find("PoolThread.run") != std::string::npos;
  EXPECT_TRUE(Named) << R.Quiescence.str();
  EXPECT_NE(R.Message.find("PoolThread.run"), std::string::npos)
      << R.Message;
  EXPECT_NE(R.Message.find("never returns"), std::string::npos) << R.Message;
}

TEST(Apps, Email13AbortDiagnosesInfiniteLoop) {
  AppModel App = makeEmailApp();
  size_t V13 = 4;
  ASSERT_EQ(App.release(V13).Name, "1.3");

  VM TheVM(appConfig());
  TheVM.loadProgram(App.version(V13 - 1));
  startEmailThreads(TheVM);
  TheVM.run(1'000);

  Updater U(TheVM);
  UpdateOptions Opts;
  Opts.TimeoutTicks = 60'000;
  UpdateResult R = U.applyNow(
      Upt::prepare(App.version(V13 - 1), App.version(V13), "v124"), Opts);
  ASSERT_EQ(R.Status, UpdateStatus::TimedOut);
  ASSERT_TRUE(R.Quiescence.diagnosed());

  // Both daemon loops changed and neither ever returns.
  std::vector<std::string> Loops = R.Quiescence.loopingMethods();
  bool Pop3 = false, Smtp = false;
  for (const std::string &M : Loops) {
    Pop3 = Pop3 || M.find("Pop3Processor.run") != std::string::npos;
    Smtp = Smtp || M.find("SMTPSender.run") != std::string::npos;
  }
  EXPECT_TRUE(Pop3) << R.Quiescence.str();
  EXPECT_TRUE(Smtp) << R.Quiescence.str();
  EXPECT_NE(R.Message.find("never returns"), std::string::npos) << R.Message;
}

TEST(Apps, Jetty513DegradesToBodySubset) {
  AppModel App = makeJettyApp();
  VM TheVM(appConfig());
  TheVM.loadProgram(App.version(2)); // 5.1.2
  startJettyThreads(TheVM);

  LoadDriver::Options LO;
  LO.Port = JettyPort;
  LoadDriver Driver(TheVM, LO);
  Driver.runWithLoad(3'000);

  Updater U(TheVM);
  UpdateOptions Opts;
  Opts.TimeoutTicks = 60'000;
  Opts.AllowDegraded = true;
  UpdateResult R = U.applyNow(
      Upt::prepare(App.version(2), App.version(3), "v512"), Opts);

  // Table 2's 5.1.3 row: 59 changed method bodies land now; the class
  // adds/field surgery stay deferred.
  ASSERT_EQ(R.Status, UpdateStatus::Degraded) << R.Message;
  EXPECT_EQ(R.ResolvedRung, QuiescenceRung::Degrade);
  EXPECT_GE(R.DegradedApplied.size(), 2u);
  EXPECT_FALSE(R.DegradedDeferred.empty());
  EXPECT_TRUE(U.hasDeferred());

  // The server keeps serving on the degraded code.
  LoadResult After = Driver.measure(10'000);
  EXPECT_GT(After.Responses, 20u);
  for (auto &T : TheVM.scheduler().threads())
    EXPECT_NE(T->State, ThreadState::Trapped) << T->TrapMessage;
}

TEST(Apps, Email13DegradesToBodySubsetWithDeferredRemainder) {
  AppModel App = makeEmailApp();
  size_t V13 = 4;
  VM TheVM(appConfig());
  TheVM.loadProgram(App.version(V13 - 1));
  startEmailThreads(TheVM);
  TheVM.run(1'000);

  Updater U(TheVM);
  UpdateOptions Opts;
  Opts.TimeoutTicks = 60'000;
  Opts.AllowDegraded = true;
  UpdateResult R = U.applyNow(
      Upt::prepare(App.version(V13 - 1), App.version(V13), "v124"), Opts);

  // 1.3 mixes body changes with signature/field surgery: the body subset
  // lands now, the class-shape remainder is reported and kept deferred.
  ASSERT_EQ(R.Status, UpdateStatus::Degraded) << R.Message;
  EXPECT_EQ(R.ResolvedRung, QuiescenceRung::Degrade);
  EXPECT_FALSE(R.DegradedApplied.empty());
  EXPECT_FALSE(R.DegradedDeferred.empty());
  EXPECT_TRUE(U.hasDeferred());

  // POP3 still answers on the degraded code.
  TheVM.injectConnection(Pop3Port, {40});
  TheVM.run(20'000);
  std::vector<NetResponse> Rs = TheVM.net().drainResponses();
  ASSERT_GE(Rs.size(), 1u);
  for (auto &T : TheVM.scheduler().threads())
    EXPECT_NE(T->State, ThreadState::Trapped) << T->TrapMessage;
}

TEST(Apps, Email132UsesOsrAndFigure3Transformer) {
  AppModel App = makeEmailApp();
  size_t V132 = 6; // base=1.2.1, 1=1.2.2, ..., 5=1.3.1, 6=1.3.2
  ASSERT_EQ(App.release(V132).Name, "1.3.2");
  ASSERT_TRUE(App.release(V132).NeedsOsr);

  VM TheVM(appConfig());
  TheVM.loadProgram(App.version(V132 - 1));
  startEmailThreads(TheVM);
  TheVM.injectConnection(Pop3Port, {100, 200}, /*InterArrival=*/500);
  TheVM.run(2'000);

  UpdateBundle B =
      Upt::prepare(App.version(V132 - 1), App.version(V132), "v131");
  registerEmailTransformers(B, App, V132);
  Updater U(TheVM);
  UpdateResult R = U.applyNow(std::move(B));
  ASSERT_EQ(R.Status, UpdateStatus::Applied) << R.Message;
  EXPECT_GE(R.OsrReplacements, 2); // Pop3Processor.run and SMTPSender.run
  EXPECT_GE(R.ObjectsTransformed, 1u);

  // The POP3 loop keeps serving with the transformed User object: the
  // forward count must still be 1 (one converted EmailAddress).
  TheVM.run(20'000);
  std::vector<NetResponse> Rs = TheVM.net().drainResponses();
  ASSERT_GE(Rs.size(), 2u);
  EXPECT_EQ(Rs.back().Value % 100, 1);
  for (auto &T : TheVM.scheduler().threads())
    EXPECT_NE(T->State, ThreadState::Trapped) << T->TrapMessage;
}

TEST(Apps, Email13TimesOut) {
  AppModel App = makeEmailApp();
  size_t V13 = 4;
  ASSERT_EQ(App.release(V13).Name, "1.3");
  ASSERT_FALSE(App.release(V13).ExpectSupported);

  VM TheVM(appConfig());
  TheVM.loadProgram(App.version(V13 - 1));
  startEmailThreads(TheVM);
  TheVM.run(1'000);

  Updater U(TheVM);
  UpdateOptions Opts;
  Opts.TimeoutTicks = 60'000;
  UpdateResult R = U.applyNow(
      Upt::prepare(App.version(V13 - 1), App.version(V13), "v124"), Opts);
  EXPECT_EQ(R.Status, UpdateStatus::TimedOut);
}

TEST(Apps, CrossFtp108BusyVsIdle) {
  AppModel App = makeCrossFtpApp();
  ASSERT_TRUE(App.release(3).OnlyWhenIdle);

  // Busy: a long-running session keeps handle() on stack -> timeout.
  {
    VM TheVM(appConfig());
    TheVM.loadProgram(App.version(2));
    startCrossFtpThreads(TheVM);
    // A session with many slow requests: handle() stays active.
    std::vector<int64_t> Requests(200, 1);
    TheVM.injectConnection(FtpPort, Requests, /*InterArrival=*/300);
    TheVM.run(2'000);

    Updater U(TheVM);
    UpdateOptions Opts;
    Opts.TimeoutTicks = 30'000;
    UpdateResult R = U.applyNow(
        Upt::prepare(App.version(2), App.version(3), "v107"), Opts);
    EXPECT_EQ(R.Status, UpdateStatus::TimedOut);
  }

  // Idle: no session active -> handle() not on stack -> applies.
  {
    VM TheVM(appConfig());
    TheVM.loadProgram(App.version(2));
    startCrossFtpThreads(TheVM);
    TheVM.run(2'000); // server parks in accept

    Updater U(TheVM);
    UpdateResult R =
        U.applyNow(Upt::prepare(App.version(2), App.version(3), "v107"));
    EXPECT_EQ(R.Status, UpdateStatus::Applied) << R.Message;

    // New sessions run the new handler.
    TheVM.injectConnection(FtpPort, {7});
    TheVM.run(10'000);
    std::vector<NetResponse> Rs = TheVM.net().drainResponses();
    ASSERT_EQ(Rs.size(), 1u);
    EXPECT_EQ(Rs[0].Value, 221);
  }
}

TEST(Apps, FlexibilityHeadline20of22) {
  // Count supported updates per the release metadata: the paper's
  // 20-of-22 (Jvolve) versus method-body-only systems.
  AppModel Apps[] = {makeJettyApp(), makeEmailApp(), makeCrossFtpApp()};
  int Total = 0, JvolveOk = 0, EcOk = 0;
  for (const AppModel &App : Apps) {
    for (size_t V = 1; V < App.numVersions(); ++V) {
      ++Total;
      if (App.release(V).ExpectSupported)
        ++JvolveOk;
      UpdateSummary S =
          Upt::computeSpec(App.version(V - 1), App.version(V)).Summary;
      if (EcUpdater::supports(S))
        ++EcOk;
    }
  }
  EXPECT_EQ(Total, 22);
  EXPECT_EQ(JvolveOk, 20);
  // The paper reports 9; our reconstruction of the tables yields 8 (see
  // EXPERIMENTS.md for the counting discussion).
  EXPECT_EQ(EcOk, 8);
}

//===--- Eager vs lazy transformation across the full update stream ---------===//

/// Parameter: LazyTransform on/off. Every release of every app must reach
/// the same supported/unsupported verdict in both modes, and every applied
/// update must pass post-update certification — the lazy engine's final
/// heap is indistinguishable from the eager one.
class AppsUpdateMode : public ::testing::TestWithParam<bool> {};

TEST_P(AppsUpdateMode, All22ReleasesMatchTableVerdictAndCertify) {
  const bool Lazy = GetParam();
  AppModel Apps[] = {makeJettyApp(), makeEmailApp(), makeCrossFtpApp()};
  int Total = 0, Supported = 0;
  for (const AppModel &App : Apps) {
    for (size_t V = 1; V < App.numVersions(); ++V) {
      SCOPED_TRACE(App.name() + " " + App.release(V).Name +
                   (Lazy ? " [lazy]" : " [eager]"));
      ReleaseOutcome R =
          evaluateRelease(App, V, /*TimeoutTicks=*/60'000, Lazy);
      ++Total;
      if (R.supported())
        ++Supported;
      EXPECT_EQ(R.supported(), App.release(V).ExpectSupported);
      if (R.Result.Status == UpdateStatus::Applied) {
        EXPECT_TRUE(R.Result.Certified);
        EXPECT_TRUE(R.Result.CertificationProblems.empty())
            << R.Result.CertificationProblems.front();
      }
    }
  }
  // The 20-of-22 headline holds in both transformation modes.
  EXPECT_EQ(Total, 22);
  EXPECT_EQ(Supported, 20);
}

INSTANTIATE_TEST_SUITE_P(EagerAndLazy, AppsUpdateMode,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool> &Info) {
                           return Info.param ? std::string("Lazy")
                                             : std::string("Eager");
                         });

//===--- Post-commit canary reverts on the modeled applications -------------===//

namespace {

UpdateOptions appCanaryOpts(bool Lazy) {
  UpdateOptions Opts;
  Opts.LazyTransform = Lazy;
  Opts.CanaryWindow.WindowTicks = 100'000'000;
  Opts.CanaryWindow.CheckIntervalTicks = 1'000;
  return Opts;
}

/// The revert's contract on a real application: certification verdicts
/// identical to never having updated — the reverse update certifies
/// clean, the running program diffs empty against the pre-update
/// version, and no new-version object survives.
void expectAppReverted(VM &TheVM, const UpdateResult &Rev,
                       const ClassSet &PriorVersion) {
  ASSERT_EQ(Rev.Status, UpdateStatus::Reverted) << Rev.Message;
  EXPECT_TRUE(Rev.Certified);
  EXPECT_TRUE(Rev.CertificationProblems.empty())
      << Rev.CertificationProblems.front();
  EXPECT_TRUE(Upt::computeSpec(TheVM.program(), PriorVersion).empty());
  auto *Ctl = static_cast<CanaryController *>(TheVM.canary());
  ASSERT_NE(Ctl, nullptr);
  EXPECT_EQ(Ctl->state(), CanaryState::Reverted);
  EXPECT_EQ(Ctl->report().ResidualNewObjects, 0u);
}

void runJettyRevertScenario(bool Lazy) {
  AppModel App = makeJettyApp();
  ASSERT_EQ(App.release(3).Name, "5.1.3");
  VM TheVM(appConfig());
  TheVM.loadProgram(App.version(2));
  startJettyThreads(TheVM);

  LoadDriver::Options LO;
  LO.Port = JettyPort;
  LoadDriver Driver(TheVM, LO);
  Driver.runWithLoad(3'000);

  // 5.1.3 changes methods that live on pool-thread stacks; the same
  // operator pc maps that make it applicable forward are inverted by the
  // revert to walk the frames back.
  UpdateBundle B = Upt::prepare(App.version(2), App.version(3), "v512");
  {
    ActiveMethodMapping M;
    M.Method = {"ThreadedServer", "acceptSocket", "(I)I"};
    M.PcMap = {{0, 0}, {1, 1}, {2, 4}};
    B.addActiveMapping(std::move(M));
  }
  {
    ActiveMethodMapping M;
    M.Method = {"PoolThread", "run", "(I)V"};
    M.PcMap = {{0, 0}, {1, 1}, {2, 2}, {3, 3}, {4, 7}, {5, 8}};
    B.addActiveMapping(std::move(M));
  }

  Updater U(TheVM);
  UpdateResult R = U.applyNow(std::move(B), appCanaryOpts(Lazy));
  ASSERT_EQ(R.Status, UpdateStatus::Applied) << R.Message;
  ASSERT_TRUE(R.CanaryArmed);

  // Serve inside the window, then pull the update back out.
  Driver.runWithLoad(3'000);
  UpdateResult Rev = U.revert("operator revert");
  expectAppReverted(TheVM, Rev, App.version(2));

  // The server keeps serving on the reinstated 5.1.2.
  LoadResult After = Driver.measure(10'000);
  EXPECT_GT(After.Responses, 20u);
  for (auto &T : TheVM.scheduler().threads())
    EXPECT_NE(T->State, ThreadState::Trapped) << T->TrapMessage;
}

void runEmailRevertScenario(bool Lazy) {
  AppModel App = makeEmailApp();
  size_t V132 = 6;
  ASSERT_EQ(App.release(V132).Name, "1.3.2");
  VM TheVM(appConfig());
  TheVM.loadProgram(App.version(V132 - 1));
  startEmailThreads(TheVM);
  TheVM.injectConnection(Pop3Port, {100, 200}, /*InterArrival=*/500);
  TheVM.run(2'000);

  // 1.3.2 needs OSR and the Figure-3 User transformer forward; the revert
  // undoes the User surgery with the default inverse plus the undo log.
  UpdateBundle B =
      Upt::prepare(App.version(V132 - 1), App.version(V132), "v131");
  registerEmailTransformers(B, App, V132);
  Updater U(TheVM);
  UpdateResult R = U.applyNow(std::move(B), appCanaryOpts(Lazy));
  ASSERT_EQ(R.Status, UpdateStatus::Applied) << R.Message;
  ASSERT_TRUE(R.CanaryArmed);

  TheVM.run(10'000);
  UpdateResult Rev = U.revert("operator revert");
  expectAppReverted(TheVM, Rev, App.version(V132 - 1));

  // POP3 still answers on the reinstated 1.3.1.
  TheVM.injectConnection(Pop3Port, {40});
  TheVM.run(20'000);
  EXPECT_FALSE(TheVM.net().drainResponses().empty());
  for (auto &T : TheVM.scheduler().threads())
    EXPECT_NE(T->State, ThreadState::Trapped) << T->TrapMessage;
}

} // namespace

TEST(Apps, Jetty513RevertsUnderLoadEager) { runJettyRevertScenario(false); }
TEST(Apps, Jetty513RevertsUnderLoadLazy) { runJettyRevertScenario(true); }
TEST(Apps, Email132RevertsAfterOsrEager) { runEmailRevertScenario(false); }
TEST(Apps, Email132RevertsAfterOsrLazy) { runEmailRevertScenario(true); }
