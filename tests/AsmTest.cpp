//===----------------------------------------------------------------------===//
///
/// \file
/// Assembler front-end tests: parsing, diagnostics, execution of parsed
/// programs, and the round-trip property (write(parse(x)) == x modulo
/// formatting) swept over every version of all three application models.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "apps/CrossFtpApp.h"
#include "apps/EmailApp.h"
#include "apps/JettyApp.h"
#include "asm/Assembler.h"
#include "asm/AsmWriter.h"
#include "bytecode/Builtins.h"
#include "bytecode/Verifier.h"

#include <gtest/gtest.h>

using namespace jvolve;
using namespace jvolve::test;

namespace {

std::vector<AsmError> parseErrors(const std::string &Text) {
  std::vector<AsmError> Errors;
  parseProgram(Text, Errors);
  return Errors;
}

} // namespace

TEST(Asm, ParsesMinimalClass) {
  ClassSet Set = parseProgramOrDie(R"(
    class Point {
      field x I
      field y I
    }
  )");
  ASSERT_TRUE(Set.contains("Point"));
  const ClassDef *P = Set.find("Point");
  EXPECT_EQ(P->Super, "Object");
  ASSERT_EQ(P->Fields.size(), 2u);
  EXPECT_EQ(P->Fields[0].Name, "x");
}

TEST(Asm, ParsesModifiers) {
  ClassSet Set = parseProgramOrDie(R"(
    class User {
      private final field name LString;
      static field count I
      protected field shared I
    }
  )");
  const ClassDef *U = Set.find("User");
  EXPECT_EQ(U->Fields[0].Visibility, Access::Private);
  EXPECT_TRUE(U->Fields[0].IsFinal);
  EXPECT_TRUE(U->Fields[1].IsStatic);
  EXPECT_EQ(U->Fields[2].Visibility, Access::Protected);
}

TEST(Asm, ParsesInheritance) {
  ClassSet Set = parseProgramOrDie(R"(
    class Animal { }
    class Bird extends Animal { }
  )");
  EXPECT_EQ(Set.find("Bird")->Super, "Animal");
}

TEST(Asm, ParsedProgramExecutes) {
  ClassSet Set = parseProgramOrDie(R"(
    // Computes sum of 1..n iteratively.
    class Main {
      static method sum(I)I locals 2 {
        iconst 0
        store 1
      loop:
        load 0
        ifle done
        load 1
        load 0
        iadd
        store 1
        load 0
        iconst 1
        isub
        store 0
        goto loop
      done:
        load 1
        iret
      }
    }
  )");
  VM TheVM(smallConfig());
  TheVM.loadProgram(Set);
  EXPECT_EQ(
      TheVM.callStatic("Main", "sum", "(I)I", {Slot::ofInt(10)}).IntVal, 55);
}

TEST(Asm, ParsedObjectsAndCalls) {
  ClassSet Set = parseProgramOrDie(R"(
    class Box {
      field v I
      method get()I {
        load 0
        getfield Box.v I
        iret
      }
    }
    class Main {
      static method run()I locals 1 {
        new Box
        store 0
        load 0
        iconst 42
        putfield Box.v I
        load 0
        invokevirtual Box.get()I
        iret
      }
    }
  )");
  EXPECT_EQ(runIntMain(Set), 42);
}

TEST(Asm, ParsedStringsAndIntrinsics) {
  ClassSet Set = parseProgramOrDie(R"(
    class Main {
      static method run()I {
        sconst "hello \"quoted\" world"
        intrinsic str_length
        iret
      }
    }
  )");
  EXPECT_EQ(runIntMain(Set), 20);
}

TEST(Asm, CommentsAndWhitespace) {
  ClassSet Set = parseProgramOrDie(R"(
    # hash comment
    class Main {  // trailing comment
      static method run()I {
        iconst 7   // the answer-ish
        iret
      }
    }
  )");
  EXPECT_EQ(runIntMain(Set), 7);
}

TEST(Asm, ErrorsCarryLineNumbers) {
  std::vector<AsmError> Errors = parseErrors("class Main {\n  bogus\n}\n");
  ASSERT_FALSE(Errors.empty());
  EXPECT_EQ(Errors[0].Line, 2);
  EXPECT_NE(Errors[0].Message.find("bogus"), std::string::npos);
}

TEST(Asm, RejectsMalformedPrograms) {
  EXPECT_FALSE(parseErrors("klass Main { }").empty());
  EXPECT_FALSE(parseErrors("class Main {").empty());
  EXPECT_FALSE(parseErrors("class Main { field x }").empty());
  EXPECT_FALSE(parseErrors("class Main { field x Q }").empty());
  EXPECT_FALSE(
      parseErrors("class Main { method broken { iret } }").empty());
  EXPECT_FALSE(parseErrors("class Main { static method m()V { iconst } }")
                   .empty());
  EXPECT_FALSE(
      parseErrors("class Main { static method m()V { goto } }").empty());
  EXPECT_FALSE(parseErrors("class M { static method m()V { sconst x } }")
                   .empty());
  EXPECT_FALSE(
      parseErrors("class M { static method m()V { intrinsic nope } }")
          .empty());
  EXPECT_FALSE(parseErrors("class A { } class A { }").empty());
  EXPECT_FALSE(parseErrors(R"(class M { static method m()V { sconst "x)")
                   .empty());
}

TEST(Asm, UnboundLabelAborts) {
  EXPECT_DEATH(parseProgramOrDie(
                   "class M { static method m()V { goto nowhere } }"),
               "unbound label");
}

TEST(Asm, WriterOutputIsParseable) {
  ClassSet Set = parseProgramOrDie(R"(
    class Pair {
      field a I
      field b LPair;
      method sum()I locals 2 {
        load 0
        getfield Pair.a I
        store 1
      again:
        load 1
        ifge done
        goto again
      done:
        load 1
        iret
      }
    }
  )");
  std::string Text = writeProgramAsm(Set);
  ClassSet Again = parseProgramOrDie(Text);
  EXPECT_EQ(*Set.find("Pair"), *Again.find("Pair"));
}

namespace {

/// Round-trip check for a full program version.
void expectRoundTrip(const ClassSet &Set, const std::string &Tag) {
  std::string Text = writeProgramAsm(Set);
  std::vector<AsmError> Errors;
  std::optional<ClassSet> Again = parseProgram(Text, Errors);
  ASSERT_TRUE(Again.has_value())
      << Tag << ": " << (Errors.empty() ? "?" : Errors[0].str());
  for (const auto &[Name, Cls] : Set.classes()) {
    if (isBuiltinClass(Name))
      continue;
    const ClassDef *Re = Again->find(Name);
    ASSERT_NE(Re, nullptr) << Tag << ": lost class " << Name;
    EXPECT_EQ(Cls, *Re) << Tag << ": class " << Name
                        << " changed in round trip";
  }
  // And the reparsed program still verifies.
  ensureBuiltins(*Again);
  EXPECT_TRUE(verifies(*Again)) << Tag;
}

} // namespace

TEST(Asm, RoundTripJettyVersions) {
  AppModel App = makeJettyApp();
  for (size_t V = 0; V < App.numVersions(); ++V)
    expectRoundTrip(App.version(V), App.versionName(V));
}

TEST(Asm, RoundTripEmailVersions) {
  AppModel App = makeEmailApp();
  for (size_t V = 0; V < App.numVersions(); ++V)
    expectRoundTrip(App.version(V), App.versionName(V));
}

TEST(Asm, RoundTripCrossFtpVersions) {
  AppModel App = makeCrossFtpApp();
  for (size_t V = 0; V < App.numVersions(); ++V)
    expectRoundTrip(App.version(V), App.versionName(V));
}
