//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end dynamic-software-update tests: method-body updates, class
/// updates with default and custom transformers, the Figure 2/3
/// User/EmailAddress scenario, return barriers, OSR for category-(2)
/// methods, timeouts for always-on-stack methods, rejections, subclass
/// closure, statics migration, and the E&C baseline.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "dsu/EcUpdater.h"
#include "dsu/Transformers.h"
#include "dsu/Updater.h"
#include "dsu/Upt.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

using namespace jvolve;
using namespace jvolve::test;

namespace {

/// v1: Worker.value()I returns 1.  v2: returns 2.
ClassSet workerVersion(int64_t Value) {
  ClassSet Set;
  ClassBuilder CB("Worker");
  CB.staticMethod("value", "()I").iconst(Value).iret();
  Set.add(CB.build());
  return Set;
}

} // namespace

TEST(Dsu, MethodBodyUpdateOnIdleVm) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(workerVersion(1));
  EXPECT_EQ(TheVM.callStatic("Worker", "value", "()I").IntVal, 1);

  Updater U(TheVM);
  UpdateResult R = U.applyNow(Upt::prepare(workerVersion(1), workerVersion(2), "v1"));
  EXPECT_EQ(R.Status, UpdateStatus::Applied);
  EXPECT_EQ(TheVM.callStatic("Worker", "value", "()I").IntVal, 2);
}

TEST(Dsu, EmptyUpdateApplies) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(workerVersion(1));
  Updater U(TheVM);
  UpdateResult R = U.applyNow(Upt::prepare(workerVersion(1), workerVersion(1), "v1"));
  EXPECT_EQ(R.Status, UpdateStatus::Applied);
  EXPECT_EQ(TheVM.callStatic("Worker", "value", "()I").IntVal, 1);
}

namespace {

/// Point program versions. v1: Point{x}. v2: Point{x, y} + Probe.
ClassSet pointV1() {
  ClassSet Set;
  ClassBuilder P("Point");
  P.field("x", "I");
  Set.add(P.build());
  ClassBuilder H("Holder");
  H.staticField("p", "LPoint;");
  Set.add(H.build());
  ClassBuilder S("Setup");
  S.staticMethod("init", "(I)V")
      .locals(2)
      .newobj("Point")
      .store(1)
      .load(1)
      .load(0)
      .putfield("Point", "x", "I")
      .load(1)
      .putstatic("Holder", "p", "LPoint;")
      .ret();
  Set.add(S.build());
  return Set;
}

ClassSet pointV2() {
  ClassSet Set;
  ClassBuilder P("Point");
  P.field("x", "I");
  P.field("y", "I");
  Set.add(P.build());
  ClassBuilder H("Holder");
  H.staticField("p", "LPoint;");
  Set.add(H.build());
  ClassBuilder S("Setup");
  S.staticMethod("init", "(I)V")
      .locals(2)
      .newobj("Point")
      .store(1)
      .load(1)
      .load(0)
      .putfield("Point", "x", "I")
      .load(1)
      .putstatic("Holder", "p", "LPoint;")
      .ret();
  Set.add(S.build());
  // Probe is new in v2: returns p.x * 100 + p.y.
  ClassBuilder Pr("Probe");
  Pr.staticMethod("check", "()I")
      .getstatic("Holder", "p", "LPoint;")
      .getfield("Point", "x", "I")
      .iconst(100)
      .imul()
      .getstatic("Holder", "p", "LPoint;")
      .getfield("Point", "y", "I")
      .iadd()
      .iret();
  Set.add(Pr.build());
  return Set;
}

} // namespace

TEST(Dsu, FieldAdditionWithDefaultTransformer) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(pointV1());
  TheVM.callStatic("Setup", "init", "(I)V", {Slot::ofInt(9)});

  Updater U(TheVM);
  UpdateResult R = U.applyNow(Upt::prepare(pointV1(), pointV2(), "v1"));
  ASSERT_EQ(R.Status, UpdateStatus::Applied);
  EXPECT_EQ(R.ObjectsTransformed, 1u);
  // Default transformer: x copied, y defaults to 0.
  EXPECT_EQ(TheVM.callStatic("Probe", "check", "()I").IntVal, 900);
}

TEST(Dsu, FieldAdditionWithCustomTransformer) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(pointV1());
  TheVM.callStatic("Setup", "init", "(I)V", {Slot::ofInt(9)});

  UpdateBundle B = Upt::prepare(pointV1(), pointV2(), "v1");
  B.ObjectTransformers["Point"] = [](TransformCtx &Ctx, Ref To, Ref From) {
    int64_t X = Ctx.getInt(From, "x");
    Ctx.setInt(To, "x", X);
    Ctx.setInt(To, "y", X * 2);
  };
  Updater U(TheVM);
  UpdateResult R = U.applyNow(std::move(B));
  ASSERT_EQ(R.Status, UpdateStatus::Applied);
  EXPECT_EQ(TheVM.callStatic("Probe", "check", "()I").IntVal, 918);
}

TEST(Dsu, ManyInstancesAllTransformed) {
  // An array of Points behind a static; every element must be transformed
  // and aliasing must be preserved.
  ClassSet V1 = pointV1();
  {
    ClassBuilder H("ArrHolder");
    H.staticField("arr", "[LPoint;");
    V1.add(H.build());
    ClassBuilder S("ArrSetup");
    S.staticMethod("init", "()V")
        .locals(2)
        .iconst(50)
        .newarray("LPoint;")
        .putstatic("ArrHolder", "arr", "[LPoint;")
        .iconst(0)
        .store(0)
        .label("loop")
        .load(0)
        .iconst(50)
        .branch(Opcode::IfICmpGe, "done")
        .newobj("Point")
        .store(1)
        .load(1)
        .load(0)
        .putfield("Point", "x", "I")
        .getstatic("ArrHolder", "arr", "[LPoint;")
        .load(0)
        .load(1)
        .astore()
        .load(0)
        .iconst(1)
        .iadd()
        .store(0)
        .jump("loop")
        .label("done")
        .ret();
    V1.add(S.build());
  }
  ClassSet V2 = pointV2();
  {
    ClassBuilder H("ArrHolder");
    H.staticField("arr", "[LPoint;");
    V2.add(H.build());
    ClassBuilder S("ArrSetup");
    S.staticMethod("init", "()V")
        .locals(2)
        .iconst(50)
        .newarray("LPoint;")
        .putstatic("ArrHolder", "arr", "[LPoint;")
        .iconst(0)
        .store(0)
        .label("loop")
        .load(0)
        .iconst(50)
        .branch(Opcode::IfICmpGe, "done")
        .newobj("Point")
        .store(1)
        .load(1)
        .load(0)
        .putfield("Point", "x", "I")
        .getstatic("ArrHolder", "arr", "[LPoint;")
        .load(0)
        .load(1)
        .astore()
        .load(0)
        .iconst(1)
        .iadd()
        .store(0)
        .jump("loop")
        .label("done")
        .ret();
    V2.add(S.build());
    // Sum over arr of x*10 + y.
    ClassBuilder Pr("ArrProbe");
    Pr.staticMethod("sum", "()I")
        .locals(3)
        .iconst(0)
        .store(0) // total
        .iconst(0)
        .store(1) // i
        .label("loop")
        .load(1)
        .iconst(50)
        .branch(Opcode::IfICmpGe, "done")
        .getstatic("ArrHolder", "arr", "[LPoint;")
        .load(1)
        .aload()
        .store(2)
        .load(0)
        .load(2)
        .getfield("Point", "x", "I")
        .iconst(10)
        .imul()
        .iadd()
        .load(2)
        .getfield("Point", "y", "I")
        .iadd()
        .store(0)
        .load(1)
        .iconst(1)
        .iadd()
        .store(1)
        .jump("loop")
        .label("done")
        .load(0)
        .iret();
    V2.add(Pr.build());
  }

  VM TheVM(smallConfig());
  TheVM.loadProgram(V1);
  TheVM.callStatic("ArrSetup", "init", "()V");

  UpdateBundle B = Upt::prepare(V1, V2, "v1");
  B.ObjectTransformers["Point"] = [](TransformCtx &Ctx, Ref To, Ref From) {
    Ctx.setInt(To, "x", Ctx.getInt(From, "x"));
    Ctx.setInt(To, "y", 1);
  };
  Updater U(TheVM);
  UpdateResult R = U.applyNow(std::move(B));
  ASSERT_EQ(R.Status, UpdateStatus::Applied);
  EXPECT_EQ(R.ObjectsTransformed, 50u);
  // sum(i*10 + 1) for i in 0..49 = 12250 + 50
  EXPECT_EQ(TheVM.callStatic("ArrProbe", "sum", "()I").IntVal, 12300);
}

namespace {

/// The paper's Figure 2/3 scenario. v1: User.forwardAddresses is String[];
/// v2: it is EmailAddress[].
ClassSet userV1() {
  ClassSet Set;
  ClassBuilder U("User");
  U.field("username", "LString;", Access::Private, /*IsFinal=*/true);
  U.field("forwardAddresses", "[LString;", Access::Private);
  U.method("<init>", "(LString;[LString;)V")
      .load(0)
      .load(1)
      .putfield("User", "username", "LString;")
      .load(0)
      .load(2)
      .putfield("User", "forwardAddresses", "[LString;")
      .ret();
  U.method("getUsername", "()LString;")
      .load(0)
      .getfield("User", "username", "LString;")
      .aret();
  U.method("getForwardedAddresses", "()[LString;")
      .load(0)
      .getfield("User", "forwardAddresses", "[LString;")
      .aret();
  Set.add(U.build());
  ClassBuilder H("Accounts");
  H.staticField("admin", "LUser;");
  Set.add(H.build());
  ClassBuilder S("Setup");
  // init(): admin = new User("admin", ["alice@example.com", "bob@foo.org"])
  S.staticMethod("init", "()V")
      .locals(2)
      .iconst(2)
      .newarray("LString;")
      .store(1)
      .load(1)
      .iconst(0)
      .sconst("alice@example.com")
      .astore()
      .load(1)
      .iconst(1)
      .sconst("bob@foo.org")
      .astore()
      .newobj("User")
      .store(0)
      .load(0)
      .sconst("admin")
      .load(1)
      .invokespecial("User", "<init>", "(LString;[LString;)V")
      .load(0)
      .putstatic("Accounts", "admin", "LUser;")
      .ret();
  Set.add(S.build());
  return Set;
}

ClassSet userV2() {
  ClassSet Set;
  ClassBuilder E("EmailAddress");
  E.field("user", "LString;");
  E.field("domain", "LString;");
  Set.add(E.build());
  ClassBuilder U("User");
  U.field("username", "LString;", Access::Private, /*IsFinal=*/true);
  U.field("forwardAddresses", "[LEmailAddress;", Access::Private);
  U.method("<init>", "(LString;[LEmailAddress;)V")
      .load(0)
      .load(1)
      .putfield("User", "username", "LString;")
      .load(0)
      .load(2)
      .putfield("User", "forwardAddresses", "[LEmailAddress;")
      .ret();
  U.method("getUsername", "()LString;")
      .load(0)
      .getfield("User", "username", "LString;")
      .aret();
  U.method("getForwardedAddresses", "()[LEmailAddress;")
      .load(0)
      .getfield("User", "forwardAddresses", "[LEmailAddress;")
      .aret();
  Set.add(U.build());
  ClassBuilder H("Accounts");
  H.staticField("admin", "LUser;");
  Set.add(H.build());
  ClassBuilder S("Setup");
  S.staticMethod("init", "()V").ret(); // fresh v2 installs create none
  Set.add(S.build());
  // Probe: 1 if admin.getForwardedAddresses()[1].domain == "foo.org".
  ClassBuilder Pr("Probe");
  Pr.staticMethod("check", "()I")
      .getstatic("Accounts", "admin", "LUser;")
      .invokevirtual("User", "getForwardedAddresses", "()[LEmailAddress;")
      .iconst(1)
      .aload()
      .getfield("EmailAddress", "domain", "LString;")
      .sconst("foo.org")
      .intrinsic(IntrinsicId::StrEquals)
      .iret();
  Set.add(Pr.build());
  return Set;
}

} // namespace

TEST(Dsu, Figure3UserTransformer) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(userV1());
  TheVM.callStatic("Setup", "init", "()V");

  UpdateBundle B = Upt::prepare(userV1(), userV2(), "v131");

  // The Figure 3 jvolveObject transformer: copy username, convert each
  // forwarded address string "a@b" into an EmailAddress{a, b}. Note it
  // writes the *final*, *private* username field — TransformCtx bypasses
  // access modifiers exactly like the paper's JastAdd extension.
  B.ObjectTransformers["User"] = [](TransformCtx &Ctx, Ref To, Ref From) {
    Ctx.setRef(To, "username", Ctx.getRef(From, "username"));
    Ref OldArr = Ctx.getRef(From, "forwardAddresses");
    int64_t Len = Ctx.arrayLength(OldArr);
    Ref NewArr = Ctx.allocateArray("LEmailAddress;", Len);
    Ctx.setRef(To, "forwardAddresses", NewArr);
    for (int64_t I = 0; I < Len; ++I) {
      std::string Addr = Ctx.stringValue(Ctx.getElemRef(OldArr, I));
      std::vector<std::string> Parts = splitString(Addr, '@', 2);
      Ref Email = Ctx.allocate("EmailAddress");
      Ctx.setRef(Email, "user", Ctx.newString(Parts[0]));
      Ctx.setRef(Email, "domain", Ctx.newString(Parts.size() > 1 ? Parts[1] : ""));
      Ctx.setElemRef(NewArr, I, Email);
    }
  };

  Updater U(TheVM);
  UpdateResult R = U.applyNow(std::move(B));
  ASSERT_EQ(R.Status, UpdateStatus::Applied) << R.Message;
  EXPECT_EQ(TheVM.callStatic("Probe", "check", "()I").IntVal, 1);
  // The username String was carried over unchanged through the update.
  Ref Admin = TheVM.registry()
                  .cls(TheVM.registry().idOf("Accounts"))
                  .Statics[0]
                  .RefVal;
  ASSERT_NE(Admin, nullptr);
  TransformCtx Ctx(TheVM, nullptr);
  EXPECT_EQ(TheVM.stringValue(Ctx.getRef(Admin, "username")), "admin");
}

namespace {

/// Server whose loop() sleeps between calls to handle(); handle() is the
/// method the update changes.
ClassSet serverVersion(int64_t HandleValue, bool HandleSleeps) {
  ClassSet Set;
  ClassBuilder S("Server");
  S.staticField("total", "I");
  MethodBuilder &H = S.staticMethod("handle", "()V");
  if (HandleSleeps)
    H.iconst(40).intrinsic(IntrinsicId::SleepTicks);
  H.getstatic("Server", "total", "I")
      .iconst(HandleValue)
      .iadd()
      .putstatic("Server", "total", "I")
      .ret();
  S.staticMethod("loop", "()V")
      .label("top")
      .invokestatic("Server", "handle", "()V")
      .iconst(10)
      .intrinsic(IntrinsicId::SleepTicks)
      .jump("top");
  S.staticMethod("probeTotal", "()I")
      .getstatic("Server", "total", "I")
      .iret();
  Set.add(S.build());
  return Set;
}

} // namespace

TEST(Dsu, ReturnBarrierOnChangedMethod) {
  if (codeVersionModeForced())
    GTEST_SKIP() << "body-only bundle commits through the version chains under "
                    "JVOLVE_CODEVERSION=1 -- no safe-point protocol to assert";
  VM TheVM(smallConfig());
  ClassSet V1 = serverVersion(1, /*HandleSleeps=*/true);
  ClassSet V2 = serverVersion(1000, /*HandleSleeps=*/true);
  TheVM.loadProgram(V1);
  TheVM.spawnThread("Server", "loop", "()V", {}, "server", /*Daemon=*/true);

  // Run until the server thread is inside handle() (sleeping there).
  TheVM.run(20);

  Updater U(TheVM);
  UpdateOptions Opts;
  Opts.TimeoutTicks = 1'000'000;
  UpdateResult R = U.applyNow(Upt::prepare(V1, V2, "v1"), Opts);
  ASSERT_EQ(R.Status, UpdateStatus::Applied) << R.Message;
  EXPECT_GE(R.ReturnBarriersInstalled, 1);
  EXPECT_GE(R.SafePointAttempts, 2);

  // After the update the loop calls the new handle(): total grows by 1000s.
  int64_t Before = TheVM.callStatic("Server", "probeTotal", "()I").IntVal;
  TheVM.run(500);
  int64_t After = TheVM.callStatic("Server", "probeTotal", "()I").IntVal;
  EXPECT_GE(After - Before, 1000);
}

TEST(Dsu, TimeoutWhenChangedMethodAlwaysOnStack) {
  if (codeVersionModeForced())
    GTEST_SKIP() << "body-only bundle commits through the version chains under "
                    "JVOLVE_CODEVERSION=1 -- no safe-point protocol to assert";
  // The update changes loop() itself — an infinite loop that never
  // returns, like Jetty 5.1.3's acceptSocket/PoolThread.run (paper §4.2).
  ClassSet V1 = serverVersion(1, false);
  ClassSet V2 = serverVersion(1, false);
  // Change loop()'s body in V2: different sleep constant.
  MethodDef *Loop = V2.find("Server")->findMethod("loop", "()V");
  ASSERT_NE(Loop, nullptr);
  for (Instr &I : Loop->Code)
    if (I.Op == Opcode::IConst && I.IVal == 10)
      I.IVal = 11;

  VM TheVM(smallConfig());
  TheVM.loadProgram(V1);
  TheVM.spawnThread("Server", "loop", "()V", {}, "server", /*Daemon=*/true);
  TheVM.run(50);

  Updater U(TheVM);
  UpdateOptions Opts;
  Opts.TimeoutTicks = 30'000;
  UpdateResult R = U.applyNow(Upt::prepare(V1, V2, "v1"), Opts);
  EXPECT_EQ(R.Status, UpdateStatus::TimedOut);
  EXPECT_GE(R.ReturnBarriersInstalled, 1);

  // The application was not harmed: the old loop keeps running.
  int64_t Before = TheVM.callStatic("Server", "probeTotal", "()I").IntVal;
  TheVM.run(200);
  EXPECT_GT(TheVM.callStatic("Server", "probeTotal", "()I").IntVal, Before);
}

TEST(Dsu, BlacklistForcesRestriction) {
  if (codeVersionModeForced())
    GTEST_SKIP() << "body-only bundle commits through the version chains under "
                    "JVOLVE_CODEVERSION=1 -- no safe-point protocol to assert";
  // loop() is unchanged, but the user blacklists it (category (3)); since
  // it never returns, the update must time out.
  ClassSet V1 = serverVersion(1, false);
  ClassSet V2 = serverVersion(2, false); // handle() body change only

  VM TheVM(smallConfig());
  TheVM.loadProgram(V1);
  TheVM.spawnThread("Server", "loop", "()V", {}, "server", /*Daemon=*/true);
  TheVM.run(50);

  Updater U(TheVM);
  UpdateOptions Opts;
  Opts.TimeoutTicks = 30'000;
  UpdateResult R = U.applyNow(
      Upt::prepare(V1, V2, "v1", {{"Server", "loop", "()V"}}), Opts);
  EXPECT_EQ(R.Status, UpdateStatus::TimedOut);
}

namespace {

/// OSR scenario: Worker.run() loops forever reading Data fields; the
/// update changes class Data (adds a field), so run() is category (2).
ClassSet osrVersion(bool WithExtraField) {
  ClassSet Set;
  {
    ClassBuilder D("Data");
    D.field("a", "I");
    if (WithExtraField)
      D.field("b", "I");
    Set.add(D.build());
  }
  {
    ClassBuilder St("Store");
    St.staticField("data", "LData;");
    St.staticField("sum", "I");
    Set.add(St.build());
  }
  {
    ClassBuilder S("Setup");
    S.staticMethod("init", "()V")
        .locals(1)
        .newobj("Data")
        .store(0)
        .load(0)
        .iconst(5)
        .putfield("Data", "a", "I")
        .load(0)
        .putstatic("Store", "data", "LData;")
        .ret();
    Set.add(S.build());
  }
  {
    ClassBuilder W("Worker");
    W.staticMethod("run", "()V")
        .label("top")
        .getstatic("Store", "sum", "I")
        .getstatic("Store", "data", "LData;")
        .getfield("Data", "a", "I")
        .iadd()
        .putstatic("Store", "sum", "I")
        .iconst(15)
        .intrinsic(IntrinsicId::SleepTicks)
        .jump("top");
    W.staticMethod("probeSum", "()I")
        .getstatic("Store", "sum", "I")
        .iret();
    Set.add(W.build());
  }
  if (WithExtraField) {
    ClassBuilder Pr("Probe");
    Pr.staticMethod("check", "()I")
        .getstatic("Store", "data", "LData;")
        .getfield("Data", "a", "I")
        .iconst(10)
        .imul()
        .getstatic("Store", "data", "LData;")
        .getfield("Data", "b", "I")
        .iadd()
        .iret();
    Set.add(Pr.build());
  }
  return Set;
}

} // namespace

TEST(Dsu, OsrLiftsCategory2Restriction) {
  ClassSet V1 = osrVersion(false);
  ClassSet V2 = osrVersion(true);

  VM TheVM(smallConfig());
  TheVM.loadProgram(V1);
  TheVM.callStatic("Setup", "init", "()V");
  TheVM.spawnThread("Worker", "run", "()V", {}, "worker", /*Daemon=*/true);
  TheVM.run(100);

  Updater U(TheVM);
  UpdateResult R = U.applyNow(Upt::prepare(V1, V2, "v1"));
  ASSERT_EQ(R.Status, UpdateStatus::Applied) << R.Message;
  EXPECT_GE(R.OsrReplacements, 1);
  EXPECT_EQ(R.ObjectsTransformed, 1u);

  // Old data preserved, new field defaulted.
  EXPECT_EQ(TheVM.callStatic("Probe", "check", "()I").IntVal, 50);

  // The OSR'd loop keeps accumulating with the *new* field offsets.
  int64_t Before = TheVM.callStatic("Worker", "probeSum", "()I").IntVal;
  TheVM.run(2000);
  int64_t After = TheVM.callStatic("Worker", "probeSum", "()I").IntVal;
  EXPECT_GT(After, Before);
  EXPECT_EQ((After - Before) % 5, 0);
}

TEST(Dsu, WithoutOsrCategory2TimesOut) {
  // Ablation: the very same update cannot be applied when OSR is disabled,
  // because run() never leaves the stack.
  ClassSet V1 = osrVersion(false);
  ClassSet V2 = osrVersion(true);

  VM TheVM(smallConfig());
  TheVM.loadProgram(V1);
  TheVM.callStatic("Setup", "init", "()V");
  TheVM.spawnThread("Worker", "run", "()V", {}, "worker", /*Daemon=*/true);
  TheVM.run(100);

  Updater U(TheVM);
  UpdateOptions Opts;
  Opts.EnableOsr = false;
  Opts.TimeoutTicks = 30'000;
  UpdateResult R = U.applyNow(Upt::prepare(V1, V2, "v1"), Opts);
  EXPECT_EQ(R.Status, UpdateStatus::TimedOut);
}

namespace {

ClassSet hierV1() {
  ClassSet Set;
  ClassBuilder A("Base");
  A.field("a", "I");
  Set.add(A.build());
  ClassBuilder B("Derived", "Base");
  B.field("b", "I");
  Set.add(B.build());
  ClassBuilder H("Holder");
  H.staticField("d", "LDerived;");
  Set.add(H.build());
  ClassBuilder S("Setup");
  S.staticMethod("init", "()V")
      .locals(1)
      .newobj("Derived")
      .store(0)
      .load(0)
      .iconst(3)
      .putfield("Base", "a", "I")
      .load(0)
      .iconst(4)
      .putfield("Derived", "b", "I")
      .load(0)
      .putstatic("Holder", "d", "LDerived;")
      .ret();
  Set.add(S.build());
  return Set;
}

ClassSet hierV2() {
  ClassSet Set = hierV1();
  // Add a field to Base: Derived's layout changes transitively.
  Set.find("Base")->Fields.push_back({"extra", "I", false, false,
                                      Access::Public});
  ClassBuilder Pr("Probe");
  Pr.staticMethod("check", "()I")
      .getstatic("Holder", "d", "LDerived;")
      .getfield("Base", "a", "I")
      .iconst(100)
      .imul()
      .getstatic("Holder", "d", "LDerived;")
      .getfield("Derived", "b", "I")
      .iconst(10)
      .imul()
      .iadd()
      .getstatic("Holder", "d", "LDerived;")
      .getfield("Base", "extra", "I")
      .iadd()
      .iret();
  Set.add(Pr.build());
  return Set;
}

} // namespace

TEST(Dsu, SubclassClosureTransformsDerivedInstances) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(hierV1());
  TheVM.callStatic("Setup", "init", "()V");

  UpdateBundle B = Upt::prepare(hierV1(), hierV2(), "v1");
  // Derived must be in the closure even though its own def is unchanged.
  EXPECT_TRUE(B.Spec.isClassUpdated("Derived"));
  EXPECT_TRUE(B.Spec.isClassUpdated("Base"));

  Updater U(TheVM);
  UpdateResult R = U.applyNow(std::move(B));
  ASSERT_EQ(R.Status, UpdateStatus::Applied) << R.Message;
  EXPECT_EQ(TheVM.callStatic("Probe", "check", "()I").IntVal, 340);
}

TEST(Dsu, StaticsMigratedByDefaultClassTransformer) {
  ClassSet V1;
  {
    ClassBuilder C("Config");
    C.staticField("level", "I");
    C.field("pad", "I"); // instance field so the class has a layout
    V1.add(C.build());
    ClassBuilder S("Setup");
    S.staticMethod("init", "()V")
        .iconst(1234)
        .putstatic("Config", "level", "I")
        .ret();
    V1.add(S.build());
  }
  ClassSet V2;
  {
    ClassBuilder C("Config");
    C.staticField("level", "I");
    C.field("pad", "I");
    C.field("pad2", "I"); // class update
    V2.add(C.build());
    ClassBuilder S("Setup");
    S.staticMethod("init", "()V")
        .iconst(1234)
        .putstatic("Config", "level", "I")
        .ret();
    V2.add(S.build());
    ClassBuilder Pr("Probe");
    Pr.staticMethod("check", "()I")
        .getstatic("Config", "level", "I")
        .iret();
    V2.add(Pr.build());
  }

  VM TheVM(smallConfig());
  TheVM.loadProgram(V1);
  TheVM.callStatic("Setup", "init", "()V");

  Updater U(TheVM);
  UpdateResult R = U.applyNow(Upt::prepare(V1, V2, "v1"));
  ASSERT_EQ(R.Status, UpdateStatus::Applied) << R.Message;
  EXPECT_EQ(TheVM.callStatic("Probe", "check", "()I").IntVal, 1234);
}

TEST(Dsu, RejectsUnverifiableNewVersion) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(workerVersion(1));

  // Broken v2: value() returns a null reference from an int method.
  ClassSet Broken;
  ClassBuilder CB("Worker");
  CB.staticMethod("value", "()I").nullconst().raw(
      {Opcode::IReturn, 0, "", "", ""});
  Broken.add(CB.build());

  Updater U(TheVM);
  UpdateResult R = U.applyNow(Upt::prepare(workerVersion(1), Broken, "v1"));
  EXPECT_EQ(R.Status, UpdateStatus::RejectedNotVerifiable);
  // Old program still intact.
  EXPECT_EQ(TheVM.callStatic("Worker", "value", "()I").IntVal, 1);
}

TEST(Dsu, RejectsHierarchyPermutation) {
  ClassSet V1;
  {
    ClassBuilder A("Alpha");
    V1.add(A.build());
    ClassBuilder B("Beta", "Alpha");
    V1.add(B.build());
  }
  ClassSet V2;
  {
    ClassBuilder B("Beta");
    V2.add(B.build());
    ClassBuilder A("Alpha", "Beta");
    V2.add(A.build());
  }
  VM TheVM(smallConfig());
  TheVM.loadProgram(V1);
  Updater U(TheVM);
  UpdateResult R = U.applyNow(Upt::prepare(V1, V2, "v1"));
  EXPECT_EQ(R.Status, UpdateStatus::RejectedHierarchy);
}

TEST(Dsu, DeletedClassAndAddedClass) {
  ClassSet V1;
  {
    ClassBuilder T("Temp");
    T.field("x", "I");
    V1.add(T.build());
    ClassBuilder M("Main");
    M.staticMethod("go", "()I").iconst(1).iret();
    V1.add(M.build());
  }
  ClassSet V2;
  {
    ClassBuilder M("Main");
    M.staticMethod("go", "()I")
        .invokestatic("Fresh", "answer", "()I")
        .iret();
    V2.add(M.build());
    ClassBuilder F("Fresh");
    F.staticMethod("answer", "()I").iconst(77).iret();
    V2.add(F.build());
  }

  VM TheVM(smallConfig());
  TheVM.loadProgram(V1);
  EXPECT_EQ(TheVM.callStatic("Main", "go", "()I").IntVal, 1);

  Updater U(TheVM);
  UpdateBundle B = Upt::prepare(V1, V2, "v1");
  EXPECT_EQ(B.Spec.DeletedClasses.size(), 1u);
  EXPECT_EQ(B.Spec.AddedClasses.size(), 1u);
  UpdateResult R = U.applyNow(std::move(B));
  ASSERT_EQ(R.Status, UpdateStatus::Applied) << R.Message;
  EXPECT_EQ(TheVM.callStatic("Main", "go", "()I").IntVal, 77);
}

TEST(Dsu, EcUpdaterSupportsBodyOnly) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(workerVersion(1));
  UpdateSpec Spec = Upt::computeSpec(workerVersion(1), workerVersion(2));
  EXPECT_TRUE(EcUpdater::supports(Spec.Summary));
  EcUpdater EC(TheVM);
  std::string Why;
  ASSERT_TRUE(EC.apply(workerVersion(2), Spec, &Why)) << Why;
  EXPECT_EQ(TheVM.callStatic("Worker", "value", "()I").IntVal, 2);
}

TEST(Dsu, EcUpdaterRejectsClassUpdate) {
  UpdateSpec Spec = Upt::computeSpec(pointV1(), pointV2());
  EXPECT_FALSE(EcUpdater::supports(Spec.Summary));
  VM TheVM(smallConfig());
  TheVM.loadProgram(pointV1());
  EcUpdater EC(TheVM);
  std::string Why;
  EXPECT_FALSE(EC.apply(pointV2(), Spec, &Why));
  EXPECT_FALSE(Why.empty());
}

TEST(Dsu, ChainedUpdates) {
  // v1 -> v2 -> v3, each adding a field; version tags keep renamed old
  // classes distinct.
  ClassSet V1 = pointV1();
  ClassSet V2 = pointV2();
  ClassSet V3 = pointV2();
  V3.find("Point")->Fields.push_back({"z", "I", false, false,
                                      Access::Public});

  VM TheVM(smallConfig());
  TheVM.loadProgram(V1);
  TheVM.callStatic("Setup", "init", "(I)V", {Slot::ofInt(3)});

  Updater U(TheVM);
  ASSERT_EQ(U.applyNow(Upt::prepare(V1, V2, "v1")).Status,
            UpdateStatus::Applied);
  EXPECT_EQ(TheVM.callStatic("Probe", "check", "()I").IntVal, 300);

  UpdateResult R2 = U.applyNow(Upt::prepare(V2, V3, "v2"));
  ASSERT_EQ(R2.Status, UpdateStatus::Applied) << R2.Message;
  EXPECT_EQ(TheVM.callStatic("Probe", "check", "()I").IntVal, 300);
}
