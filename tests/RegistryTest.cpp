//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime class-model tests: field layout with hard-coded offsets, TIB
/// construction (overrides share slots, new methods append), statics
/// storage, array classes, and the DSU renaming hooks.
///
//===----------------------------------------------------------------------===//

#include "bytecode/Builder.h"
#include "bytecode/Builtins.h"
#include "exec/CompiledMethod.h"
#include "runtime/ClassRegistry.h"
#include "runtime/ObjectModel.h"

#include <gtest/gtest.h>

using namespace jvolve;

namespace {

ClassSet hierarchySet() {
  ClassSet Set;
  ClassBuilder A("Animal");
  A.field("age", "I");
  A.field("name", "LString;");
  A.method("speak", "()I").iconst(0).iret();
  A.method("age", "()I").load(0).getfield("Animal", "age", "I").iret();
  Set.add(A.build());
  ClassBuilder B("Bird", "Animal");
  B.field("wingspan", "I");
  B.method("speak", "()I").iconst(1).iret(); // override
  B.method("fly", "()V").ret();              // new virtual method
  Set.add(B.build());
  ensureBuiltins(Set);
  return Set;
}

} // namespace

TEST(Registry, LoadsAllAndBindsNames) {
  ClassRegistry Reg;
  Reg.loadAll(hierarchySet());
  EXPECT_NE(Reg.idOf("Animal"), InvalidClassId);
  EXPECT_NE(Reg.idOf("Bird"), InvalidClassId);
  EXPECT_NE(Reg.idOf("Object"), InvalidClassId);
  EXPECT_EQ(Reg.idOf("Ghost"), InvalidClassId);
}

TEST(Registry, SubclassLayoutExtendsSuperclassLayout) {
  ClassRegistry Reg;
  Reg.loadAll(hierarchySet());
  const RtClass &Animal = Reg.cls(Reg.idOf("Animal"));
  const RtClass &Bird = Reg.cls(Reg.idOf("Bird"));

  // Inherited fields keep their superclass offsets, so superclass compiled
  // code works unchanged on subclass instances.
  const RtField *AgeA = Animal.findInstanceField("age");
  const RtField *AgeB = Bird.findInstanceField("age");
  ASSERT_NE(AgeA, nullptr);
  ASSERT_NE(AgeB, nullptr);
  EXPECT_EQ(AgeA->Offset, AgeB->Offset);
  EXPECT_EQ(AgeA->Offset, ObjectHeaderBytes);

  const RtField *Wing = Bird.findInstanceField("wingspan");
  ASSERT_NE(Wing, nullptr);
  EXPECT_EQ(Wing->Offset, Animal.InstanceSize);
  EXPECT_EQ(Bird.InstanceSize, Animal.InstanceSize + SlotBytes);
}

TEST(Registry, FieldRefnessRecorded) {
  ClassRegistry Reg;
  Reg.loadAll(hierarchySet());
  const RtClass &Animal = Reg.cls(Reg.idOf("Animal"));
  EXPECT_FALSE(Animal.findInstanceField("age")->IsRef);
  EXPECT_TRUE(Animal.findInstanceField("name")->IsRef);
}

TEST(Registry, TibOverridesShareSlotNewMethodsAppend) {
  ClassRegistry Reg;
  Reg.loadAll(hierarchySet());
  const RtClass &Animal = Reg.cls(Reg.idOf("Animal"));
  const RtClass &Bird = Reg.cls(Reg.idOf("Bird"));

  int SpeakSlot = Animal.VTableIndex.at("speak()I");
  EXPECT_EQ(Bird.VTableIndex.at("speak()I"), SpeakSlot);
  // Same slot, different implementation.
  EXPECT_NE(Animal.VTable[SpeakSlot], Bird.VTable[SpeakSlot]);
  // Inherited non-overridden method shares the implementation.
  int AgeSlot = Animal.VTableIndex.at("age()I");
  EXPECT_EQ(Animal.VTable[AgeSlot], Bird.VTable[AgeSlot]);
  // New virtual methods extend the table.
  EXPECT_GT(Bird.VTable.size(), Animal.VTable.size());
  EXPECT_TRUE(Bird.VTableIndex.count("fly()V"));
  EXPECT_FALSE(Animal.VTableIndex.count("fly()V"));
}

TEST(Registry, StaticsGetSlotsAndTags) {
  ClassSet Set;
  ClassBuilder C("Cfg");
  C.staticField("level", "I");
  C.staticField("root", "LCfg;");
  Set.add(C.build());
  ensureBuiltins(Set);
  ClassRegistry Reg;
  Reg.loadAll(Set);
  RtClass &Cfg = Reg.cls(Reg.idOf("Cfg"));
  ASSERT_EQ(Cfg.Statics.size(), 2u);
  EXPECT_FALSE(Cfg.Statics[0].IsRef);
  EXPECT_TRUE(Cfg.Statics[1].IsRef);
  EXPECT_EQ(Cfg.findStaticField("level")->Offset, 0u);
  EXPECT_EQ(Cfg.findStaticField("root")->Offset, 1u);
}

TEST(Registry, ResolveStaticThroughChain) {
  ClassSet Set;
  ClassBuilder A("Parent");
  A.staticField("shared", "I");
  Set.add(A.build());
  Set.add(ClassBuilder("Child", "Parent").build());
  ensureBuiltins(Set);
  ClassRegistry Reg;
  Reg.loadAll(Set);
  ClassId Declaring = InvalidClassId;
  RtField *F =
      Reg.resolveStaticField(Reg.idOf("Child"), "shared", &Declaring);
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(Declaring, Reg.idOf("Parent"));
}

TEST(Registry, ArrayClassesCreatedOnDemandAndShared) {
  ClassRegistry Reg;
  Reg.loadAll(hierarchySet());
  ClassId A1 = Reg.arrayClassOf(Type::refTy("Animal"));
  ClassId A2 = Reg.arrayClassOf(Type::refTy("Animal"));
  ClassId I1 = Reg.arrayClassOf(Type::intTy());
  EXPECT_EQ(A1, A2);
  EXPECT_NE(A1, I1);
  EXPECT_TRUE(Reg.cls(A1).IsArray);
  EXPECT_TRUE(Reg.cls(A1).ElemIsRef);
  EXPECT_FALSE(Reg.cls(I1).ElemIsRef);
  EXPECT_EQ(Reg.cls(A1).Name, "[LAnimal;");
}

TEST(Registry, IsSubclassOf) {
  ClassRegistry Reg;
  Reg.loadAll(hierarchySet());
  EXPECT_TRUE(Reg.isSubclassOf(Reg.idOf("Bird"), Reg.idOf("Animal")));
  EXPECT_TRUE(Reg.isSubclassOf(Reg.idOf("Bird"), Reg.idOf("Object")));
  EXPECT_FALSE(Reg.isSubclassOf(Reg.idOf("Animal"), Reg.idOf("Bird")));
}

TEST(Registry, RenameForUpdateFreesNameAndMarksObsolete) {
  ClassRegistry Reg;
  Reg.loadAll(hierarchySet());
  ClassId OldId = Reg.idOf("Animal");
  Reg.renameClassForUpdate(OldId, "v1_Animal");

  EXPECT_EQ(Reg.idOf("Animal"), InvalidClassId);
  EXPECT_EQ(Reg.idOf("v1_Animal"), OldId);
  EXPECT_TRUE(Reg.cls(OldId).Obsolete);
  for (MethodId M : Reg.cls(OldId).Methods) {
    EXPECT_TRUE(Reg.method(M).Obsolete);
    EXPECT_EQ(Reg.method(M).Code, nullptr);
  }

  // A replacement class can now be loaded under the original name.
  ClassSet Replacement;
  ClassBuilder NewAnimal("Animal");
  NewAnimal.field("age", "I");
  Replacement.add(NewAnimal.build());
  ensureBuiltins(Replacement);
  ClassId NewId = Reg.loadClass(*Replacement.find("Animal"), Replacement);
  EXPECT_EQ(Reg.idOf("Animal"), NewId);
  EXPECT_NE(NewId, OldId);
  EXPECT_FALSE(Reg.cls(NewId).Obsolete);
}

TEST(Registry, SetMethodBodyInvalidatesCode) {
  ClassRegistry Reg;
  ClassSet Set = hierarchySet();
  Reg.loadAll(Set);
  MethodId Speak = Reg.resolveMethod(Reg.idOf("Animal"), "speak", "()I");
  ASSERT_NE(Speak, InvalidMethodId);
  // Fake a compiled body.
  Reg.method(Speak).Code = std::make_shared<CompiledMethod>();
  Reg.method(Speak).InvokeCount = 7;

  MethodBuilder MB("speak", "()I", false);
  MB.iconst(9).iret();
  Reg.setMethodBody(Speak, MB.build());
  EXPECT_EQ(Reg.method(Speak).Code, nullptr);
  EXPECT_EQ(Reg.method(Speak).InvokeCount, 0u);
  EXPECT_EQ(Reg.method(Speak).Def->Code[0].IVal, 9);
}

TEST(Registry, VisitStaticRootsSkipsNulls) {
  ClassSet Set;
  ClassBuilder C("Cfg");
  C.staticField("a", "LCfg;");
  C.staticField("b", "LCfg;");
  Set.add(C.build());
  ensureBuiltins(Set);
  ClassRegistry Reg;
  Reg.loadAll(Set);
  RtClass &Cfg = Reg.cls(Reg.idOf("Cfg"));
  uint8_t Dummy;
  Cfg.Statics[0].RefVal = &Dummy;
  int Visited = 0;
  Reg.visitStaticRoots([&](Ref &R) {
    ++Visited;
    EXPECT_EQ(R, &Dummy);
  });
  EXPECT_EQ(Visited, 1);
}

TEST(Registry, ResolveMethodWalksChain) {
  ClassRegistry Reg;
  Reg.loadAll(hierarchySet());
  // age() is declared on Animal, resolvable from Bird.
  EXPECT_NE(Reg.resolveMethod(Reg.idOf("Bird"), "age", "()I"),
            InvalidMethodId);
  EXPECT_EQ(Reg.resolveMethod(Reg.idOf("Bird"), "age", "(I)I"),
            InvalidMethodId);
}
