//===----------------------------------------------------------------------===//
///
/// \file
/// Execution-engine tests: arithmetic, control flow, objects, arrays,
/// strings, dispatch, recursion, and runtime traps.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "bytecode/Builder.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

using namespace jvolve;
using namespace jvolve::test;

TEST(Interpreter, ConstantAndReturn) {
  EXPECT_EQ(runIntMain(intProgram([](MethodBuilder &M) {
              M.iconst(42).iret();
            })),
            42);
}

TEST(Interpreter, Arithmetic) {
  // (7 + 3) * 4 - 5 = 35, then 35 % 8 = 3, then -3
  EXPECT_EQ(runIntMain(intProgram([](MethodBuilder &M) {
              M.iconst(7).iconst(3).iadd().iconst(4).imul().iconst(5).isub();
              M.iconst(8).irem().ineg().iret();
            })),
            -3);
}

TEST(Interpreter, Division) {
  EXPECT_EQ(runIntMain(intProgram([](MethodBuilder &M) {
              M.iconst(17).iconst(5).idiv().iret();
            })),
            3);
}

TEST(Interpreter, LocalsAndLoop) {
  // sum = 0; for (i = 0; i < 10; i++) sum += i;  => 45
  EXPECT_EQ(runIntMain(intProgram([](MethodBuilder &M) {
              M.locals(2);
              M.iconst(0).store(0); // sum
              M.iconst(0).store(1); // i
              M.label("loop");
              M.load(1).iconst(10).branch(Opcode::IfICmpGe, "done");
              M.load(0).load(1).iadd().store(0);
              M.load(1).iconst(1).iadd().store(1);
              M.jump("loop");
              M.label("done");
              M.load(0).iret();
            })),
            45);
}

TEST(Interpreter, ConditionalBranches) {
  // if (5 > 3) return 1 else return 0
  EXPECT_EQ(runIntMain(intProgram([](MethodBuilder &M) {
              M.iconst(5).iconst(3).branch(Opcode::IfICmpGt, "yes");
              M.iconst(0).iret();
              M.label("yes");
              M.iconst(1).iret();
            })),
            1);
}

TEST(Interpreter, DupAndPop) {
  EXPECT_EQ(runIntMain(intProgram([](MethodBuilder &M) {
              M.iconst(6).dup().iadd().iconst(99).pop().iret();
            })),
            12);
}

/// A program with a Counter class: field, constructor-style init, methods.
static ClassSet counterProgram() {
  ClassSet Set;
  {
    ClassBuilder CB("Counter");
    CB.field("count", "I");
    CB.method("increment", "()V")
        .load(0)
        .load(0)
        .getfield("Counter", "count", "I")
        .iconst(1)
        .iadd()
        .putfield("Counter", "count", "I")
        .ret();
    CB.method("get", "()I")
        .load(0)
        .getfield("Counter", "count", "I")
        .iret();
    Set.add(CB.build());
  }
  {
    ClassBuilder CB("Main");
    MethodBuilder &M = CB.staticMethod("run", "()I");
    M.locals(2);
    M.newobj("Counter").store(0);
    M.iconst(0).store(1);
    M.label("loop");
    M.load(1).iconst(5).branch(Opcode::IfICmpGe, "done");
    M.load(0).invokevirtual("Counter", "increment", "()V");
    M.load(1).iconst(1).iadd().store(1);
    M.jump("loop");
    M.label("done");
    M.load(0).invokevirtual("Counter", "get", "()I").iret();
    Set.add(CB.build());
  }
  return Set;
}

TEST(Interpreter, ObjectFieldsAndVirtualCalls) {
  EXPECT_EQ(runIntMain(counterProgram()), 5);
}

TEST(Interpreter, StaticFieldsAndCalls) {
  ClassSet Set;
  {
    ClassBuilder CB("Config");
    CB.staticField("level", "I");
    CB.staticMethod("bump", "(I)I")
        .getstatic("Config", "level", "I")
        .load(0)
        .iadd()
        .dup()
        .putstatic("Config", "level", "I")
        .iret();
    Set.add(CB.build());
  }
  {
    ClassBuilder CB("Main");
    MethodBuilder &M = CB.staticMethod("run", "()I");
    M.iconst(10).invokestatic("Config", "bump", "(I)I").pop();
    M.iconst(7).invokestatic("Config", "bump", "(I)I").iret();
    Set.add(CB.build());
  }
  EXPECT_EQ(runIntMain(Set), 17);
}

TEST(Interpreter, Inheritance) {
  ClassSet Set;
  {
    ClassBuilder CB("Animal");
    CB.method("legs", "()I").iconst(4).iret();
    CB.method("doubleLegs", "()I")
        .load(0)
        .invokevirtual("Animal", "legs", "()I")
        .iconst(2)
        .imul()
        .iret();
    Set.add(CB.build());
  }
  {
    ClassBuilder CB("Bird", "Animal");
    CB.method("legs", "()I").iconst(2).iret(); // override
    Set.add(CB.build());
  }
  {
    ClassBuilder CB("Main");
    MethodBuilder &M = CB.staticMethod("run", "()I");
    // new Bird().doubleLegs() dispatches legs() to the override: 4.
    M.newobj("Bird").invokevirtual("Animal", "doubleLegs", "()I").iret();
    Set.add(CB.build());
  }
  EXPECT_EQ(runIntMain(Set), 4);
}

TEST(Interpreter, Recursion) {
  ClassSet Set;
  {
    ClassBuilder CB("Main");
    CB.staticMethod("fib", "(I)I")
        .load(0)
        .iconst(2)
        .branch(Opcode::IfICmpGe, "rec")
        .load(0)
        .iret()
        .label("rec")
        .load(0)
        .iconst(1)
        .isub()
        .invokestatic("Main", "fib", "(I)I")
        .load(0)
        .iconst(2)
        .isub()
        .invokestatic("Main", "fib", "(I)I")
        .iadd()
        .iret();
    CB.staticMethod("run", "()I")
        .iconst(15)
        .invokestatic("Main", "fib", "(I)I")
        .iret();
    Set.add(CB.build());
  }
  EXPECT_EQ(runIntMain(Set), 610);
}

TEST(Interpreter, Arrays) {
  // a = new int[8]; a[i] = i*i; return a[5] + a.length
  EXPECT_EQ(runIntMain(intProgram([](MethodBuilder &M) {
              M.locals(2);
              M.iconst(8).newarray("I").store(0);
              M.iconst(0).store(1);
              M.label("loop");
              M.load(1).iconst(8).branch(Opcode::IfICmpGe, "done");
              M.load(0).load(1).load(1).load(1).imul().astore();
              M.load(1).iconst(1).iadd().store(1);
              M.jump("loop");
              M.label("done");
              M.load(0).iconst(5).aload();
              M.load(0).arraylength().iadd().iret();
            })),
            33);
}

TEST(Interpreter, RefArraysAndNullChecks) {
  ClassSet Set;
  {
    ClassBuilder CB("Box");
    CB.field("v", "I");
    Set.add(CB.build());
  }
  {
    ClassBuilder CB("Main");
    MethodBuilder &M = CB.staticMethod("run", "()I");
    M.locals(2);
    M.iconst(3).newarray("LBox;").store(0);
    M.newobj("Box").store(1);
    M.load(1).iconst(77).putfield("Box", "v", "I");
    M.load(0).iconst(1).load(1).astore();
    // Unset element is null.
    M.load(0).iconst(0).aload().branch(Opcode::IfNull, "ok");
    M.iconst(-1).iret();
    M.label("ok");
    M.load(0).iconst(1).aload().getfield("Box", "v", "I").iret();
    Set.add(CB.build());
  }
  EXPECT_EQ(runIntMain(Set), 77);
}

TEST(Interpreter, Strings) {
  ClassSet Set;
  {
    ClassBuilder CB("Main");
    MethodBuilder &M = CB.staticMethod("run", "()I");
    M.sconst("hello").sconst(" world");
    M.intrinsic(IntrinsicId::StrConcat);
    M.intrinsic(IntrinsicId::StrLength);
    M.iret();
    Set.add(CB.build());
  }
  EXPECT_EQ(runIntMain(Set), 11);
}

TEST(Interpreter, StringEquality) {
  ClassSet Set;
  {
    ClassBuilder CB("Main");
    MethodBuilder &M = CB.staticMethod("run", "()I");
    M.sconst("abc").sconst("abc").intrinsic(IntrinsicId::StrEquals);
    M.sconst("abc").sconst("xyz").intrinsic(IntrinsicId::StrEquals);
    M.iconst(10).imul().iadd().iret();
    Set.add(CB.build());
  }
  EXPECT_EQ(runIntMain(Set), 1);
}

TEST(Interpreter, InstanceOfAndCheckCast) {
  ClassSet Set;
  {
    ClassBuilder A("Animal");
    Set.add(A.build());
    ClassBuilder B("Bird", "Animal");
    Set.add(B.build());
  }
  {
    ClassBuilder CB("Main");
    MethodBuilder &M = CB.staticMethod("run", "()I");
    M.locals(1);
    M.newobj("Bird").store(0);
    M.load(0).instanceofOp("Animal"); // 1
    M.load(0).instanceofOp("Bird");   // 1
    M.iadd();
    M.load(0).checkcast("Animal").pop();
    M.iret();
    Set.add(CB.build());
  }
  EXPECT_EQ(runIntMain(Set), 2);
}

TEST(Interpreter, DivisionByZeroTraps) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(intProgram([](MethodBuilder &M) {
    M.iconst(1).iconst(0).idiv().iret();
  }));
  ThreadId Id = TheVM.spawnThread("Main", "run", "()I");
  TheVM.runToCompletion();
  VMThread *T = TheVM.scheduler().findThread(Id);
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->State, ThreadState::Trapped);
  EXPECT_NE(T->TrapMessage.find("division by zero"), std::string::npos);
}

TEST(Interpreter, NullFieldAccessTraps) {
  ClassSet Set;
  {
    ClassBuilder CB("Box");
    CB.field("v", "I");
    Set.add(CB.build());
  }
  {
    ClassBuilder CB("Main");
    MethodBuilder &M = CB.staticMethod("run", "()I");
    M.nullconst().checkcast("Box").getfield("Box", "v", "I").iret();
    Set.add(CB.build());
  }
  VM TheVM(smallConfig());
  TheVM.loadProgram(Set);
  ThreadId Id = TheVM.spawnThread("Main", "run", "()I");
  TheVM.runToCompletion();
  EXPECT_EQ(TheVM.scheduler().findThread(Id)->State, ThreadState::Trapped);
}

TEST(Interpreter, ArrayBoundsTraps) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(intProgram([](MethodBuilder &M) {
    M.iconst(2).newarray("I").iconst(5).aload().iret();
  }));
  ThreadId Id = TheVM.spawnThread("Main", "run", "()I");
  TheVM.runToCompletion();
  VMThread *T = TheVM.scheduler().findThread(Id);
  EXPECT_EQ(T->State, ThreadState::Trapped);
  EXPECT_NE(T->TrapMessage.find("bounds"), std::string::npos);
}

TEST(Interpreter, BadCastTraps) {
  ClassSet Set;
  {
    ClassBuilder A("Animal");
    Set.add(A.build());
    ClassBuilder B("Bird", "Animal");
    Set.add(B.build());
  }
  {
    ClassBuilder CB("Main");
    MethodBuilder &M = CB.staticMethod("run", "()I");
    M.newobj("Animal").checkcast("Bird").pop().iconst(0).iret();
    Set.add(CB.build());
  }
  VM TheVM(smallConfig());
  TheVM.loadProgram(Set);
  ThreadId Id = TheVM.spawnThread("Main", "run", "()I");
  TheVM.runToCompletion();
  EXPECT_EQ(TheVM.scheduler().findThread(Id)->State, ThreadState::Trapped);
}

TEST(Interpreter, PrintIntrinsics) {
  ClassSet Set;
  {
    ClassBuilder CB("Main");
    MethodBuilder &M = CB.staticMethod("run", "()V");
    M.iconst(7).intrinsic(IntrinsicId::PrintInt);
    M.sconst("jvolve").intrinsic(IntrinsicId::PrintStr);
    M.ret();
    Set.add(CB.build());
  }
  VM TheVM(smallConfig());
  TheVM.loadProgram(Set);
  TheVM.callStatic("Main", "run", "()V");
  ASSERT_EQ(TheVM.printLog().size(), 2u);
  EXPECT_EQ(TheVM.printLog()[0], "7");
  EXPECT_EQ(TheVM.printLog()[1], "jvolve");
}
