//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the §3.5 old-copy-space optimization: correctness is
/// unchanged, duplicates land in the dedicated block, the block is
/// released immediately after transformation, and to-space occupancy right
/// after an update is strictly lower than in the default configuration.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "dsu/Transformers.h"
#include "dsu/Updater.h"
#include "dsu/Upt.h"

#include <gtest/gtest.h>

using namespace jvolve;
using namespace jvolve::test;

namespace {

ClassSet recVersion(bool Extra) {
  ClassSet Set;
  ClassBuilder R("Rec");
  R.field("v", "I");
  R.field("peer", "LRec;");
  if (Extra)
    R.field("extra", "I");
  Set.add(R.build());
  ClassBuilder H("H");
  H.staticField("arr", "[LRec;");
  Set.add(H.build());
  return Set;
}

/// Populates H.arr with \p N linked Rec objects.
void populate(VM &TheVM, int N) {
  ClassRegistry &Reg = TheVM.registry();
  ClassId RecId = Reg.idOf("Rec");
  ClassId ArrId = Reg.arrayClassOf(Type::refTy("Rec"));
  Ref Arr = TheVM.allocateArray(ArrId, N);
  Reg.cls(Reg.idOf("H")).Statics[0] = Slot::ofRef(Arr);
  TransformCtx Ctx(TheVM, nullptr);
  Ref Prev = nullptr;
  for (int I = 0; I < N; ++I) {
    Ref Obj = TheVM.allocateObject(RecId);
    Ctx.setInt(Obj, "v", I);
    Ctx.setRef(Obj, "peer", Prev);
    Arr = Reg.cls(Reg.idOf("H")).Statics[0].RefVal;
    Ctx.setElemRef(Arr, I, Obj);
    Prev = Obj;
  }
}

int64_t checksum(VM &TheVM) {
  ClassRegistry &Reg = TheVM.registry();
  TransformCtx Ctx(TheVM, nullptr);
  Ref Arr = Reg.cls(Reg.idOf("H")).Statics[0].RefVal;
  int64_t Sum = 0;
  for (int64_t I = 0; I < Ctx.arrayLength(Arr); ++I) {
    Ref Obj = Ctx.getElemRef(Arr, I);
    Sum += Ctx.getInt(Obj, "v");
    Ref Peer = Ctx.getRef(Obj, "peer");
    if (Peer)
      Sum += Ctx.getInt(Peer, "v") % 7;
  }
  return Sum;
}

UpdateResult applyWithOption(VM &TheVM, bool UseOldCopySpace) {
  UpdateOptions Opts;
  Opts.UseOldCopySpace = UseOldCopySpace;
  Updater U(TheVM);
  return U.applyNow(Upt::prepare(recVersion(false), recVersion(true), "v1"),
                    Opts);
}

} // namespace

TEST(OldCopySpace, SemanticsIdenticalToDefault) {
  int64_t Sums[2];
  for (int Mode = 0; Mode < 2; ++Mode) {
    VM TheVM(smallConfig());
    TheVM.loadProgram(recVersion(false));
    populate(TheVM, 300);
    int64_t Before = checksum(TheVM);
    UpdateResult R = applyWithOption(TheVM, Mode == 1);
    ASSERT_EQ(R.Status, UpdateStatus::Applied) << R.Message;
    EXPECT_EQ(R.ObjectsTransformed, 300u);
    Sums[Mode] = checksum(TheVM);
    EXPECT_EQ(Sums[Mode], Before);
  }
  EXPECT_EQ(Sums[0], Sums[1]);
}

TEST(OldCopySpace, DuplicatesLandInSeparateBlock) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(recVersion(false));
  populate(TheVM, 200);
  UpdateResult R = applyWithOption(TheVM, true);
  ASSERT_EQ(R.Status, UpdateStatus::Applied);
  // 200 Rec objects of 32 bytes each were duplicated outside to-space.
  EXPECT_GE(R.Gc.OldCopySpaceBytes, 200u * 32);
}

TEST(OldCopySpace, BlockReleasedAfterUpdate) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(recVersion(false));
  populate(TheVM, 100);
  ASSERT_EQ(applyWithOption(TheVM, true).Status, UpdateStatus::Applied);
  EXPECT_FALSE(TheVM.heap().hasOldCopySpace());
}

TEST(OldCopySpace, ReducesToSpaceOccupancy) {
  size_t Occupancy[2];
  for (int Mode = 0; Mode < 2; ++Mode) {
    VM TheVM(smallConfig());
    TheVM.loadProgram(recVersion(false));
    populate(TheVM, 500);
    ASSERT_EQ(applyWithOption(TheVM, Mode == 1).Status,
              UpdateStatus::Applied);
    Occupancy[Mode] = TheVM.heap().bytesAllocated();
  }
  // With the separate block, the heap right after the update does not
  // carry the dead duplicates.
  EXPECT_LT(Occupancy[1], Occupancy[0]);
  EXPECT_GE(Occupancy[0] - Occupancy[1], 500u * 32);
}

TEST(OldCopySpace, ImmediateReclamationMatchesDeferredOne) {
  // Default mode reclaims the duplicates at the *next* collection; the
  // old-copy space already has. After one extra GC both configurations
  // converge to the same live size.
  size_t LiveBytes[2];
  for (int Mode = 0; Mode < 2; ++Mode) {
    VM TheVM(smallConfig());
    TheVM.loadProgram(recVersion(false));
    populate(TheVM, 400);
    ASSERT_EQ(applyWithOption(TheVM, Mode == 1).Status,
              UpdateStatus::Applied);
    TheVM.collectGarbage();
    LiveBytes[Mode] = TheVM.heap().bytesAllocated();
  }
  EXPECT_EQ(LiveBytes[0], LiveBytes[1]);
}

TEST(OldCopySpace, ForceTransformWorksAcrossSpaces) {
  // ensureTransformed must work when old copies live outside to-space.
  VM TheVM(smallConfig());
  TheVM.loadProgram(recVersion(false));
  populate(TheVM, 50);

  UpdateBundle B = Upt::prepare(recVersion(false), recVersion(true), "v1");
  B.ObjectTransformers["Rec"] = [](TransformCtx &Ctx, Ref To, Ref From) {
    Ctx.setInt(To, "v", Ctx.getInt(From, "v"));
    Ref Peer = Ctx.getRef(From, "peer");
    Ctx.setRef(To, "peer", Peer);
    if (Peer) {
      Ctx.ensureTransformed(Peer);
      Ctx.setInt(To, "extra", Ctx.getInt(Peer, "v"));
    }
  };
  UpdateOptions Opts;
  Opts.UseOldCopySpace = true;
  Updater U(TheVM);
  UpdateResult R = U.applyNow(std::move(B), Opts);
  ASSERT_EQ(R.Status, UpdateStatus::Applied) << R.Message;
  EXPECT_EQ(R.ObjectsTransformed, 50u);

  TransformCtx Ctx(TheVM, nullptr);
  Ref Arr = TheVM.registry()
                .cls(TheVM.registry().idOf("H"))
                .Statics[0]
                .RefVal;
  Ref Last = Ctx.getElemRef(Arr, 49);
  EXPECT_EQ(Ctx.getInt(Last, "extra"), 48);
}
