//===----------------------------------------------------------------------===//
///
/// \file
/// Active-method update tests (§3.5 extension, UpStare-style): changed
/// methods that never leave the stack become updatable when the developer
/// supplies a pc map and (optionally) a frame transformer — including the
/// paper's two otherwise-unsupported updates (Jetty 5.1.3, JES 1.3).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "apps/EmailApp.h"
#include "apps/JettyApp.h"
#include "apps/Workload.h"
#include "dsu/Transformers.h"
#include "dsu/Updater.h"
#include "dsu/Upt.h"

#include <gtest/gtest.h>

using namespace jvolve;
using namespace jvolve::test;

namespace {

/// Infinite-loop worker whose per-iteration increment is the version
/// constant; the update changes the constant (a cat-(1) body change on a
/// method that never returns).
ClassSet spinnerVersion(int64_t Delta) {
  ClassSet Set;
  ClassBuilder CB("Spinner");
  CB.staticField("total", "I");
  CB.staticMethod("run", "()V")
      .label("top")
      .getstatic("Spinner", "total", "I")
      .iconst(Delta)
      .iadd()
      .putstatic("Spinner", "total", "I")
      .iconst(20)
      .intrinsic(IntrinsicId::SleepTicks)
      .jump("top");
  CB.staticMethod("probe", "()I").getstatic("Spinner", "total", "I").iret();
  Set.add(CB.build());
  return Set;
}

int64_t probeTotal(VM &TheVM) {
  return TheVM.callStatic("Spinner", "probe", "()I").IntVal;
}

} // namespace

TEST(ActiveMethod, WithoutMappingTimesOut) {
  if (codeVersionModeForced())
    GTEST_SKIP() << "body-only bundle commits through the version chains under "
                    "JVOLVE_CODEVERSION=1 -- no safe-point protocol to assert";
  VM TheVM(smallConfig());
  TheVM.loadProgram(spinnerVersion(1));
  TheVM.spawnThread("Spinner", "run", "()V", {}, "spin", true);
  TheVM.run(100);

  Updater U(TheVM);
  UpdateOptions Opts;
  Opts.TimeoutTicks = 20'000;
  UpdateResult R =
      U.applyNow(Upt::prepare(spinnerVersion(1), spinnerVersion(1000), "v1"),
                 Opts);
  EXPECT_EQ(R.Status, UpdateStatus::TimedOut);
}

TEST(ActiveMethod, IdentityMappingReplacesRunningMethod) {
  if (codeVersionModeForced())
    GTEST_SKIP() << "body-only bundle commits through the version chains under "
                    "JVOLVE_CODEVERSION=1 -- no safe-point protocol to assert";
  VM TheVM(smallConfig());
  TheVM.loadProgram(spinnerVersion(1));
  TheVM.spawnThread("Spinner", "run", "()V", {}, "spin", true);
  TheVM.run(100);

  UpdateBundle B = Upt::prepare(spinnerVersion(1), spinnerVersion(1000),
                                "v1");
  // Both versions have identical shape (only a constant differs), so the
  // identity pc map is exact.
  B.addActiveMapping(ActiveMethodMapping::identity(
      {"Spinner", "run", "()V"},
      spinnerVersion(1000).find("Spinner")->findMethod("run")->Code.size()));

  Updater U(TheVM);
  UpdateResult R = U.applyNow(std::move(B));
  ASSERT_EQ(R.Status, UpdateStatus::Applied) << R.Message;
  EXPECT_EQ(R.ActiveFramesRemapped, 1);
  EXPECT_EQ(R.ReturnBarriersInstalled, 0);

  // The *same activation* now runs the new body: increments of 1000.
  int64_t Before = probeTotal(TheVM);
  TheVM.run(500);
  int64_t Delta = probeTotal(TheVM) - Before;
  EXPECT_GE(Delta, 1000);
  EXPECT_EQ(Delta % 1000, 0);
}

TEST(ActiveMethod, ExplicitPcMapForRestructuredBody) {
  if (codeVersionModeForced())
    GTEST_SKIP() << "body-only bundle commits through the version chains under "
                    "JVOLVE_CODEVERSION=1 -- no safe-point protocol to assert";
  // New body inserts an extra instruction before the loop counter update,
  // shifting pcs; the explicit map targets the shifted yield points.
  ClassSet V1 = spinnerVersion(1);
  ClassSet V2 = spinnerVersion(1);
  {
    MethodDef *Run = V2.find("Spinner")->findMethod("run", "()V");
    MethodBuilder MB("run", "()V", /*IsStatic=*/true);
    MB.label("top")
        .iconst(0)
        .pop() // new: inserted prologue work each iteration
        .getstatic("Spinner", "total", "I")
        .iconst(7)
        .iadd()
        .putstatic("Spinner", "total", "I")
        .iconst(20)
        .intrinsic(IntrinsicId::SleepTicks)
        .jump("top");
    *Run = MB.build();
  }

  VM TheVM(smallConfig());
  TheVM.loadProgram(V1);
  TheVM.spawnThread("Spinner", "run", "()V", {}, "spin", true);
  TheVM.run(100);

  UpdateBundle B = Upt::prepare(V1, V2, "v1");
  ActiveMethodMapping M;
  M.Method = {"Spinner", "run", "()V"};
  // Old pcs 0..6 -> new pcs shifted by 2 (except the loop head).
  M.PcMap = {{0, 0}, {1, 3}, {2, 4}, {3, 5}, {4, 6}, {5, 7}, {6, 8}};
  B.addActiveMapping(std::move(M));

  Updater U(TheVM);
  UpdateResult R = U.applyNow(std::move(B));
  ASSERT_EQ(R.Status, UpdateStatus::Applied) << R.Message;
  EXPECT_EQ(R.ActiveFramesRemapped, 1);

  int64_t Before = probeTotal(TheVM);
  TheVM.run(500);
  EXPECT_EQ((probeTotal(TheVM) - Before) % 7, 0);
  EXPECT_GT(probeTotal(TheVM), Before);
}

TEST(ActiveMethod, FrameTransformerRebuildsLocals) {
  if (codeVersionModeForced())
    GTEST_SKIP() << "body-only bundle commits through the version chains under "
                    "JVOLVE_CODEVERSION=1 -- no safe-point protocol to assert";
  // v2 keeps a per-iteration counter in a *new* local slot; the frame
  // transformer seeds it from virtual state.
  ClassSet V1;
  {
    ClassBuilder CB("Loop");
    CB.staticField("sum", "I");
    CB.staticMethod("run", "(I)V")
        .locals(1)
        .label("top")
        .getstatic("Loop", "sum", "I")
        .load(0)
        .iadd()
        .putstatic("Loop", "sum", "I")
        .iconst(25)
        .intrinsic(IntrinsicId::SleepTicks)
        .jump("top");
    V1.add(CB.build());
  }
  ClassSet V2;
  {
    ClassBuilder CB("Loop");
    CB.staticField("sum", "I");
    // Fresh invocations initialize the new multiplier local to 1; the
    // frame transformer seeds the *live* activation differently.
    CB.staticMethod("run", "(I)V")
        .locals(2)
        .iconst(1)
        .store(1)
        .label("top")
        .getstatic("Loop", "sum", "I")
        .load(0)
        .load(1)
        .imul()
        .iadd()
        .putstatic("Loop", "sum", "I")
        .iconst(25)
        .intrinsic(IntrinsicId::SleepTicks)
        .jump("top");
    V2.add(CB.build());
  }

  VM TheVM(smallConfig());
  TheVM.loadProgram(V1);
  TheVM.spawnThread("Loop", "run", "(I)V", {Slot::ofInt(3)}, "loop", true);
  TheVM.run(100);

  UpdateBundle B = Upt::prepare(V1, V2, "v1");
  ActiveMethodMapping M;
  M.Method = {"Loop", "run", "(I)V"};
  // v2 prepends two init instructions and inserts load/imul in the loop:
  // old [get, load0, iadd, put, iconst, sleep, jump] maps into the new
  // body past the prologue.
  M.PcMap = {{0, 2}, {1, 3}, {2, 6}, {3, 7}, {4, 8}, {5, 9}, {6, 10}};
  M.Frame = [](TransformCtx &, const std::vector<Slot> &Old,
               std::vector<Slot> &New) {
    New[0] = Old[0];          // carried argument
    New[1] = Slot::ofInt(10); // new multiplier local
  };
  B.addActiveMapping(std::move(M));

  Updater U(TheVM);
  UpdateResult R = U.applyNow(std::move(B));
  ASSERT_EQ(R.Status, UpdateStatus::Applied) << R.Message;
  ASSERT_EQ(R.ActiveFramesRemapped, 1);

  // Each iteration now adds 3 * 10.
  int64_t SumBefore = TheVM.registry()
                          .cls(TheVM.registry().idOf("Loop"))
                          .Statics[0]
                          .IntVal;
  TheVM.run(400);
  int64_t Delta = TheVM.registry()
                      .cls(TheVM.registry().idOf("Loop"))
                      .Statics[0]
                      .IntVal -
                  SumBefore;
  EXPECT_GT(Delta, 0);
  EXPECT_EQ(Delta % 30, 0);
}

TEST(ActiveMethod, UnmappedParkPcStaysRestricted) {
  if (codeVersionModeForced())
    GTEST_SKIP() << "body-only bundle commits through the version chains under "
                    "JVOLVE_CODEVERSION=1 -- no safe-point protocol to assert";
  VM TheVM(smallConfig());
  TheVM.loadProgram(spinnerVersion(1));
  TheVM.spawnThread("Spinner", "run", "()V", {}, "spin", true);
  TheVM.run(100);

  UpdateBundle B = Upt::prepare(spinnerVersion(1), spinnerVersion(5), "v1");
  ActiveMethodMapping M;
  M.Method = {"Spinner", "run", "()V"};
  M.PcMap = {{0, 0}}; // only the loop head; the thread parks elsewhere
  B.addActiveMapping(std::move(M));

  Updater U(TheVM);
  UpdateOptions Opts;
  Opts.TimeoutTicks = 20'000;
  UpdateResult R = U.applyNow(std::move(B), Opts);
  // Either the thread happened to park exactly at pc 0 (applied), or the
  // update deferred and timed out — never a crash. With sleep-resume pcs
  // this parks at pc 6, so it times out.
  EXPECT_EQ(R.Status, UpdateStatus::TimedOut);
}

TEST(ActiveMethod, Jetty513BecomesSupportedWithMappings) {
  AppModel App = makeJettyApp();
  ASSERT_EQ(App.release(3).Name, "5.1.3");

  VM::Config Cfg = smallConfig();
  Cfg.HeapSpaceBytes = 8u << 20;
  VM TheVM(Cfg);
  TheVM.loadProgram(App.version(2));
  startJettyThreads(TheVM);
  LoadDriver::Options LO;
  LO.Port = JettyPort;
  LoadDriver Driver(TheVM, LO);
  Driver.runWithLoad(3'000);

  UpdateBundle B = Upt::prepare(App.version(2), App.version(3), "v512");
  // acceptSocket: old [load, accept, iret] -> new
  // [load, accept, iconst, iadd, iret].
  {
    ActiveMethodMapping M;
    M.Method = {"ThreadedServer", "acceptSocket", "(I)I"};
    M.PcMap = {{0, 0}, {1, 1}, {2, 4}};
    B.addActiveMapping(std::move(M));
  }
  // PoolThread.run: old [load, call, store, load, call, jump] -> new
  // [load, call, store, load, iconst, branch, load, call, jump].
  {
    ActiveMethodMapping M;
    M.Method = {"PoolThread", "run", "(I)V"};
    M.PcMap = {{0, 0}, {1, 1}, {2, 2}, {3, 3}, {4, 7}, {5, 8}};
    B.addActiveMapping(std::move(M));
  }

  Updater U(TheVM);
  UpdateResult R = U.applyNow(std::move(B));
  ASSERT_EQ(R.Status, UpdateStatus::Applied) << R.Message;
  EXPECT_GE(R.ActiveFramesRemapped, 2); // both pool threads' run frames

  // The server keeps serving on the new version.
  LoadResult After = Driver.measure(10'000);
  EXPECT_GT(After.Responses, 20u);
  for (auto &T : TheVM.scheduler().threads())
    EXPECT_NE(T->State, ThreadState::Trapped) << T->TrapMessage;
}

TEST(ActiveMethod, Jes13BecomesSupportedWithMappings) {
  AppModel App = makeEmailApp();
  ASSERT_EQ(App.release(4).Name, "1.3");

  VM::Config Cfg = smallConfig();
  Cfg.HeapSpaceBytes = 8u << 20;
  VM TheVM(Cfg);
  TheVM.loadProgram(App.version(3));
  startEmailThreads(TheVM);
  TheVM.run(1'000);

  UpdateBundle B = Upt::prepare(App.version(3), App.version(4), "v124");
  // The 1.3 run() changes append a dead trailing instruction, so identity
  // maps are exact.
  B.addActiveMapping(ActiveMethodMapping::identity(
      {"Pop3Processor", "run", "(I)V"},
      App.version(4).find("Pop3Processor")->findMethod("run")->Code.size()));
  B.addActiveMapping(ActiveMethodMapping::identity(
      {"SMTPSender", "run", "()V"},
      App.version(4).find("SMTPSender")->findMethod("run")->Code.size()));

  Updater U(TheVM);
  UpdateResult R = U.applyNow(std::move(B));
  ASSERT_EQ(R.Status, UpdateStatus::Applied) << R.Message;
  EXPECT_GE(R.ActiveFramesRemapped, 2);

  // The POP3 loop still serves sessions on the new version.
  TheVM.injectConnection(Pop3Port, {40});
  TheVM.run(10'000);
  EXPECT_FALSE(TheVM.net().drainResponses().empty());
}
