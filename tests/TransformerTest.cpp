//===----------------------------------------------------------------------===//
///
/// \file
/// Transformer-runtime tests: the privileged TransformCtx accessors, the
/// force-transform path for dereferencing not-yet-transformed objects
/// (paper §3.4), cycle detection, and default transformer semantics.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "dsu/Transformers.h"
#include "dsu/Updater.h"
#include "dsu/Upt.h"
#include "runtime/ObjectModel.h"

#include <cstdlib>
#include <gtest/gtest.h>

using namespace jvolve;
using namespace jvolve::test;

namespace {

/// v1: Node{v, next}. v2: adds `cached` initialized from next's state —
/// which requires dereferencing the *next* node during transformation.
ClassSet nodeVersion(bool WithCache) {
  ClassSet Set;
  ClassBuilder N("Node");
  N.field("v", "I");
  N.field("next", "LNode;");
  if (WithCache)
    N.field("cached", "I");
  Set.add(N.build());
  ClassBuilder H("Holder");
  H.staticField("head", "LNode;");
  Set.add(H.build());
  ClassBuilder S("Setup");
  // init(): head = Node{v:1, next: Node{v:2, next: null}}
  S.staticMethod("init", "()V")
      .locals(2)
      .newobj("Node")
      .store(0)
      .load(0)
      .iconst(2)
      .putfield("Node", "v", "I")
      .newobj("Node")
      .store(1)
      .load(1)
      .iconst(1)
      .putfield("Node", "v", "I")
      .load(1)
      .load(0)
      .putfield("Node", "next", "LNode;")
      .load(1)
      .putstatic("Holder", "head", "LNode;")
      .ret();
  Set.add(S.build());
  if (WithCache) {
    ClassBuilder P("Probe");
    P.staticMethod("headCached", "()I")
        .getstatic("Holder", "head", "LNode;")
        .getfield("Node", "cached", "I")
        .iret();
    Set.add(P.build());
  }
  return Set;
}

} // namespace

TEST(Transformer, ForceTransformMakesReferencedStateReadable) {
  VM TheVM(smallConfig());
  TheVM.loadProgram(nodeVersion(false));
  TheVM.callStatic("Setup", "init", "()V");

  UpdateBundle B = Upt::prepare(nodeVersion(false), nodeVersion(true), "v1");
  // cached = v of the *next* node. The next node may not have been
  // transformed yet, so the transformer forces it first (the paper's
  // special VM function).
  B.ObjectTransformers["Node"] = [](TransformCtx &Ctx, Ref To, Ref From) {
    Ctx.setInt(To, "v", Ctx.getInt(From, "v"));
    Ref Next = Ctx.getRef(From, "next"); // already the new version
    Ctx.setRef(To, "next", Next);
    if (Next) {
      Ctx.ensureTransformed(Next);
      Ctx.setInt(To, "cached", Ctx.getInt(Next, "v"));
    } else {
      Ctx.setInt(To, "cached", -1);
    }
  };

  Updater U(TheVM);
  UpdateResult R = U.applyNow(std::move(B));
  ASSERT_EQ(R.Status, UpdateStatus::Applied) << R.Message;
  EXPECT_EQ(R.ObjectsTransformed, 2u);
  // head.v = 1, head.next.v = 2 -> head.cached = 2.
  EXPECT_EQ(TheVM.callStatic("Probe", "headCached", "()I").IntVal, 2);
}

TEST(Transformer, CycleInForceTransformAborts) {
  if (std::getenv("JVOLVE_LAZY"))
    GTEST_SKIP() << "cycle detection fires post-commit under JVOLVE_LAZY=1 "
                    "and degrades instead of rolling back";
  // Two nodes pointing at each other, each transformer forcing the other
  // before initializing itself: an ill-defined transformer set, detected
  // by the cycle check (paper §3.4 aborts the update; MiniVM rolls the
  // transaction back and resolves the update FailedTransformer).
  VM TheVM(smallConfig());
  TheVM.loadProgram(nodeVersion(false));
  // Build the 2-cycle by hand.
  ClassRegistry &Reg = TheVM.registry();
  ClassId NodeId = Reg.idOf("Node");
  Ref A = TheVM.allocateObject(NodeId);
  Ref B = TheVM.allocateObject(NodeId);
  const RtField *Next = Reg.cls(NodeId).findInstanceField("next");
  setRefAt(A, Next->Offset, B);
  setRefAt(B, Next->Offset, A);
  RtClass &Holder = Reg.cls(Reg.idOf("Holder"));
  Holder.Statics[0] = Slot::ofRef(A);

  UpdateBundle Bundle =
      Upt::prepare(nodeVersion(false), nodeVersion(true), "v1");
  Bundle.ObjectTransformers["Node"] = [](TransformCtx &Ctx, Ref To,
                                         Ref From) {
    Ref Other = Ctx.getRef(From, "next");
    if (Other)
      Ctx.ensureTransformed(Other); // A forces B forces A: cycle
    Ctx.setInt(To, "v", 0);
    Ctx.setRef(To, "next", Other);
    Ctx.setInt(To, "cached", 0);
  };

  Updater U(TheVM);
  UpdateResult Res = U.applyNow(std::move(Bundle));
  EXPECT_EQ(Res.Status, UpdateStatus::FailedTransformer);
  EXPECT_NE(Res.Message.find("transformer cycle"), std::string::npos)
      << Res.Message;
  // The rollback preserved the old version: the cycle is intact.
  Ref Head = Reg.cls(Reg.idOf("Holder")).Statics[0].RefVal;
  ASSERT_EQ(Head, A);
  EXPECT_EQ(getRefAt(A, Next->Offset), B);
  EXPECT_EQ(getRefAt(B, Next->Offset), A);
}

TEST(Transformer, DefaultSkipsRetypedFields) {
  // When a field's type changes, the default transformer leaves the new
  // field at its default value ("the default transformer would have:
  // to.forwardAddresses = null", Fig. 3).
  ClassSet V1;
  {
    ClassBuilder C("Rec");
    C.field("same", "I");
    C.field("becomesRef", "I");
    V1.add(C.build());
    ClassBuilder H("H");
    H.staticField("r", "LRec;");
    V1.add(H.build());
  }
  ClassSet V2;
  {
    ClassBuilder C("Rec");
    C.field("same", "I");
    C.field("becomesRef", "LRec;"); // type change
    V2.add(C.build());
    ClassBuilder H("H");
    H.staticField("r", "LRec;");
    V2.add(H.build());
  }

  VM TheVM(smallConfig());
  TheVM.loadProgram(V1);
  ClassRegistry &Reg = TheVM.registry();
  Ref Obj = TheVM.allocateObject(Reg.idOf("Rec"));
  {
    TransformCtx Ctx(TheVM, nullptr);
    Ctx.setInt(Obj, "same", 41);
    Ctx.setInt(Obj, "becomesRef", 99);
  }
  Reg.cls(Reg.idOf("H")).Statics[0] = Slot::ofRef(Obj);

  Updater U(TheVM);
  UpdateResult R = U.applyNow(Upt::prepare(V1, V2, "v1"));
  ASSERT_EQ(R.Status, UpdateStatus::Applied) << R.Message;

  Ref New = Reg.cls(Reg.idOf("H")).Statics[0].RefVal;
  TransformCtx Ctx(TheVM, nullptr);
  EXPECT_EQ(Ctx.getInt(New, "same"), 41);
  EXPECT_EQ(Ctx.getRef(New, "becomesRef"), nullptr);
}

TEST(Transformer, StaticsAccessorsReachOldAndNewNamespaces) {
  // A custom class transformer reads the renamed old class's statics and
  // writes the new ones (jvolveClass semantics).
  ClassSet V1;
  {
    ClassBuilder C("Cfg");
    C.field("pad", "I");
    C.staticField("level", "I");
    V1.add(C.build());
  }
  ClassSet V2;
  {
    ClassBuilder C("Cfg");
    C.field("pad", "I");
    C.field("pad2", "I");
    C.staticField("level", "I");
    V2.add(C.build());
  }

  VM TheVM(smallConfig());
  TheVM.loadProgram(V1);
  {
    TransformCtx Ctx(TheVM, nullptr);
    Ctx.setStaticInt("Cfg", "level", 7);
  }

  UpdateBundle B = Upt::prepare(V1, V2, "v1");
  B.ClassTransformers["Cfg"] = [](TransformCtx &Ctx) {
    // Old statics live under the version-prefixed name.
    Ctx.setStaticInt("Cfg", "level",
                     Ctx.getStaticInt("v1_Cfg", "level") * 10);
  };
  Updater U(TheVM);
  ASSERT_EQ(U.applyNow(std::move(B)).Status, UpdateStatus::Applied);
  TransformCtx Ctx(TheVM, nullptr);
  EXPECT_EQ(Ctx.getStaticInt("Cfg", "level"), 70);
}

TEST(Transformer, AccessBypassesModifiersAndFinal) {
  // The Ctx writes a private final field: the JastAdd-extension behaviour
  // of §2.3.
  ClassSet Set;
  ClassBuilder C("Locked");
  C.field("secret", "I", Access::Private, /*IsFinal=*/true);
  Set.add(C.build());
  VM TheVM(smallConfig());
  TheVM.loadProgram(Set);
  Ref Obj = TheVM.allocateObject(TheVM.registry().idOf("Locked"));
  TransformCtx Ctx(TheVM, nullptr);
  Ctx.setInt(Obj, "secret", 123);
  EXPECT_EQ(Ctx.getInt(Obj, "secret"), 123);
}

TEST(Transformer, AllocationHelpersWork) {
  ClassSet Set;
  ClassBuilder C("Thing");
  C.field("tag", "LString;");
  Set.add(C.build());
  VM TheVM(smallConfig());
  TheVM.loadProgram(Set);
  TransformCtx Ctx(TheVM, nullptr);

  Ref T = Ctx.allocate("Thing");
  ASSERT_NE(T, nullptr);
  Ctx.setRef(T, "tag", Ctx.newString("hello"));
  EXPECT_EQ(Ctx.stringValue(Ctx.getRef(T, "tag")), "hello");

  Ref Arr = Ctx.allocateArray("LThing;", 3);
  ASSERT_NE(Arr, nullptr);
  EXPECT_EQ(Ctx.arrayLength(Arr), 3);
  Ctx.setElemRef(Arr, 2, T);
  EXPECT_EQ(Ctx.getElemRef(Arr, 2), T);
  EXPECT_EQ(Ctx.getElemRef(Arr, 0), nullptr);

  Ref IntArr = Ctx.allocateArray("I", 2);
  Ctx.setElemInt(IntArr, 1, 55);
  EXPECT_EQ(Ctx.getElemInt(IntArr, 1), 55);
}

TEST(Transformer, EnsureTransformedIsNoOpOutsideUpdates) {
  ClassSet Set = nodeVersion(false);
  VM TheVM(smallConfig());
  TheVM.loadProgram(Set);
  Ref Obj = TheVM.allocateObject(TheVM.registry().idOf("Node"));
  TransformCtx Ctx(TheVM, nullptr);
  Ctx.ensureTransformed(Obj); // must not crash
  Ctx.ensureTransformed(nullptr);
}
