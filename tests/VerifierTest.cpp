//===----------------------------------------------------------------------===//
///
/// \file
/// Bytecode-verifier tests. Jvolve's type-safety argument leans on
/// verification of the complete new program version, so the verifier gets
/// thorough negative coverage: stack discipline, type mismatches,
/// unresolved references, access control, hierarchy problems, and control
/// flow, plus positive cases for joins and merges.
///
//===----------------------------------------------------------------------===//

#include "bytecode/Builder.h"
#include "bytecode/Builtins.h"
#include "bytecode/Verifier.h"

#include <gtest/gtest.h>

using namespace jvolve;

namespace {

/// Wraps a single static method into a verifiable program and returns the
/// diagnostics.
std::vector<VerifyError> verifyMethodBody(
    const std::string &Sig, const std::function<void(MethodBuilder &)> &Fill,
    const std::function<void(ClassSet &)> &AddClasses = nullptr) {
  ClassSet Set;
  if (AddClasses)
    AddClasses(Set);
  ClassBuilder CB("T");
  MethodBuilder &M = CB.staticMethod("m", Sig);
  Fill(M);
  Set.add(CB.build());
  ensureBuiltins(Set);
  return Verifier(Set).verifyAll();
}

bool verifiesBody(const std::string &Sig,
                  const std::function<void(MethodBuilder &)> &Fill,
                  const std::function<void(ClassSet &)> &AddClasses =
                      nullptr) {
  return verifyMethodBody(Sig, Fill, AddClasses).empty();
}

void addBoxClass(ClassSet &Set) {
  ClassBuilder CB("Box");
  CB.field("v", "I");
  CB.field("next", "LBox;");
  CB.method("get", "()I").load(0).getfield("Box", "v", "I").iret();
  Set.add(CB.build());
}

} // namespace

//===----------------------------------------------------------------------===//
// Positive cases
//===----------------------------------------------------------------------===//

TEST(Verifier, AcceptsStraightLine) {
  EXPECT_TRUE(verifiesBody("()I", [](MethodBuilder &M) {
    M.iconst(1).iconst(2).iadd().iret();
  }));
}

TEST(Verifier, AcceptsLoopsWithMerge) {
  EXPECT_TRUE(verifiesBody("(I)I", [](MethodBuilder &M) {
    M.locals(2);
    M.iconst(0).store(1);
    M.label("loop");
    M.load(0).branch(Opcode::IfLe, "done");
    M.load(1).load(0).iadd().store(1);
    M.load(0).iconst(1).isub().store(0);
    M.jump("loop");
    M.label("done");
    M.load(1).iret();
  }));
}

TEST(Verifier, AcceptsNullMergesWithRef) {
  EXPECT_TRUE(verifiesBody(
      "(I)LBox;",
      [](MethodBuilder &M) {
        M.locals(2);
        M.load(0).branch(Opcode::IfEq, "mknull");
        M.newobj("Box").store(1).jump("out");
        M.label("mknull");
        M.nullconst().store(1);
        M.label("out");
        M.load(1).aret();
      },
      addBoxClass));
}

TEST(Verifier, AcceptsCommonSuperclassMerge) {
  auto Classes = [](ClassSet &Set) {
    Set.add(ClassBuilder("Animal").build());
    Set.add(ClassBuilder("Cat", "Animal").build());
    Set.add(ClassBuilder("Dog", "Animal").build());
  };
  EXPECT_TRUE(verifiesBody(
      "(I)V",
      [](MethodBuilder &M) {
        M.locals(2);
        M.load(0).branch(Opcode::IfEq, "cat");
        M.newobj("Dog").store(1).jump("use");
        M.label("cat");
        M.newobj("Cat").store(1);
        M.label("use");
        // Merged local type is Animal: instanceof works on it.
        M.load(1).instanceofOp("Animal").pop().ret();
      },
      Classes));
}

TEST(Verifier, AcceptsUnreachableTrailingCode) {
  // Dead code after a return (used by the app models as a pure body
  // change) must not fail verification.
  EXPECT_TRUE(verifiesBody("()I", [](MethodBuilder &M) {
    M.iconst(1).iret().nop();
  }));
}

TEST(Verifier, AcceptsCovariantRefArrays) {
  auto Classes = [](ClassSet &Set) {
    Set.add(ClassBuilder("Animal").build());
    Set.add(ClassBuilder("Cat", "Animal").build());
  };
  EXPECT_TRUE(verifiesBody(
      "()V",
      [](MethodBuilder &M) {
        M.locals(1);
        M.iconst(2).newarray("LCat;").store(0);
        M.load(0).iconst(0).newobj("Cat").astore();
        M.ret();
      },
      Classes));
}

TEST(Verifier, AcceptsIntrinsics) {
  EXPECT_TRUE(verifiesBody("()I", [](MethodBuilder &M) {
    M.sconst("x").sconst("y").intrinsic(IntrinsicId::StrConcat);
    M.intrinsic(IntrinsicId::StrLength).iret();
  }));
}

//===----------------------------------------------------------------------===//
// Stack discipline
//===----------------------------------------------------------------------===//

TEST(Verifier, RejectsStackUnderflow) {
  EXPECT_FALSE(verifiesBody("()I", [](MethodBuilder &M) {
    M.iadd().iret(); // nothing on the stack
  }));
}

TEST(Verifier, RejectsHeightMismatchAtJoin) {
  EXPECT_FALSE(verifiesBody("(I)I", [](MethodBuilder &M) {
    M.load(0).branch(Opcode::IfEq, "join");
    M.iconst(1).iconst(2); // two values on one path
    M.label("join");
    M.iconst(3).iret();
  }));
}

TEST(Verifier, RejectsIncompatibleStackJoin) {
  EXPECT_FALSE(verifiesBody("(I)V", [](MethodBuilder &M) {
    M.load(0).branch(Opcode::IfEq, "other");
    M.iconst(1).jump("join");
    M.label("other");
    M.nullconst();
    M.label("join");
    M.pop().ret();
  }));
}

TEST(Verifier, RejectsDupOnEmptyStack) {
  EXPECT_FALSE(verifiesBody("()V", [](MethodBuilder &M) {
    M.dup().pop().pop().ret();
  }));
}

//===----------------------------------------------------------------------===//
// Type mismatches
//===----------------------------------------------------------------------===//

TEST(Verifier, RejectsArithmeticOnRef) {
  EXPECT_FALSE(verifiesBody("()I", [](MethodBuilder &M) {
    M.nullconst().iconst(1).iadd().iret();
  }));
}

TEST(Verifier, RejectsIntWhereRefExpected) {
  EXPECT_FALSE(verifiesBody("()V", [](MethodBuilder &M) {
    M.iconst(5).branch(Opcode::IfNull, "x").ret().label("x").ret();
  }));
}

TEST(Verifier, RejectsWrongReturnKind) {
  EXPECT_FALSE(verifiesBody("()I", [](MethodBuilder &M) {
    M.nullconst().aret();
  }));
  EXPECT_FALSE(verifiesBody("()V", [](MethodBuilder &M) {
    M.iconst(1).iret();
  }));
  EXPECT_FALSE(verifiesBody("()I", [](MethodBuilder &M) { M.ret(); }));
}

TEST(Verifier, RejectsReturnValueSubtypeViolation) {
  auto Classes = [](ClassSet &Set) {
    Set.add(ClassBuilder("Animal").build());
    Set.add(ClassBuilder("Cat", "Animal").build());
  };
  // Returning an Animal where a Cat is promised.
  EXPECT_FALSE(verifiesBody(
      "()LCat;",
      [](MethodBuilder &M) { M.newobj("Animal").aret(); }, Classes));
  // The reverse is fine.
  EXPECT_TRUE(verifiesBody(
      "()LAnimal;",
      [](MethodBuilder &M) { M.newobj("Cat").aret(); }, Classes));
}

TEST(Verifier, RejectsUninitializedLocalRead) {
  EXPECT_FALSE(verifiesBody("()I", [](MethodBuilder &M) {
    M.locals(2);
    M.load(1).iret();
  }));
}

TEST(Verifier, RejectsLocalSlotOutOfRange) {
  EXPECT_FALSE(verifiesBody("()V", [](MethodBuilder &M) {
    M.locals(1);
    M.raw({Opcode::Load, 5, "", "", ""}).pop().ret();
  }));
}

TEST(Verifier, LocalsMayHoldConflictingTypesIfUnused) {
  // A local holding int on one path and a ref on the other is fine as long
  // as it is not read after the join.
  EXPECT_TRUE(verifiesBody("(I)V", [](MethodBuilder &M) {
    M.locals(2);
    M.load(0).branch(Opcode::IfEq, "other");
    M.iconst(1).store(1).jump("join");
    M.label("other");
    M.nullconst().store(1);
    M.label("join");
    M.ret();
  }));
  // ...but reading it after the join is an error.
  EXPECT_FALSE(verifiesBody("(I)I", [](MethodBuilder &M) {
    M.locals(2);
    M.load(0).branch(Opcode::IfEq, "other");
    M.iconst(1).store(1).jump("join");
    M.label("other");
    M.nullconst().store(1);
    M.label("join");
    M.load(1).iret();
  }));
}

//===----------------------------------------------------------------------===//
// Field and method references
//===----------------------------------------------------------------------===//

TEST(Verifier, RejectsUnknownClassInNew) {
  EXPECT_FALSE(verifiesBody("()V", [](MethodBuilder &M) {
    M.newobj("Ghost").pop().ret();
  }));
}

TEST(Verifier, RejectsUnknownField) {
  EXPECT_FALSE(verifiesBody(
      "()I",
      [](MethodBuilder &M) {
        M.newobj("Box").getfield("Box", "ghost", "I").iret();
      },
      addBoxClass));
}

TEST(Verifier, RejectsFieldTypeMismatch) {
  EXPECT_FALSE(verifiesBody(
      "()V",
      [](MethodBuilder &M) {
        // Instruction claims v is a reference; it is an int.
        M.newobj("Box").getfield("Box", "v", "LBox;").pop().ret();
      },
      addBoxClass));
}

TEST(Verifier, RejectsStaticnessMismatch) {
  EXPECT_FALSE(verifiesBody(
      "()I",
      [](MethodBuilder &M) {
        M.getstatic("Box", "v", "I").iret(); // v is an instance field
      },
      addBoxClass));
}

TEST(Verifier, RejectsStoreOfWrongFieldType) {
  EXPECT_FALSE(verifiesBody(
      "()V",
      [](MethodBuilder &M) {
        M.newobj("Box").nullconst().putfield("Box", "v", "I").ret();
      },
      addBoxClass));
}

TEST(Verifier, RejectsUnknownMethod) {
  EXPECT_FALSE(verifiesBody(
      "()V",
      [](MethodBuilder &M) {
        M.newobj("Box").invokevirtual("Box", "ghost", "()V").ret();
      },
      addBoxClass));
}

TEST(Verifier, RejectsCallArgumentMismatch) {
  auto Classes = [](ClassSet &Set) {
    ClassBuilder CB("Util");
    CB.staticMethod("want", "(I)V").ret();
    Set.add(CB.build());
  };
  EXPECT_FALSE(verifiesBody(
      "()V",
      [](MethodBuilder &M) {
        M.nullconst().invokestatic("Util", "want", "(I)V").ret();
      },
      Classes));
}

TEST(Verifier, RejectsCallArityMismatch) {
  auto Classes = [](ClassSet &Set) {
    ClassBuilder CB("Util");
    CB.staticMethod("want", "(II)I").iconst(0).iret();
    Set.add(CB.build());
  };
  EXPECT_FALSE(verifiesBody(
      "()I",
      [](MethodBuilder &M) {
        M.iconst(1).invokestatic("Util", "want", "(II)I").iret();
      },
      Classes));
}

TEST(Verifier, RejectsPrivateFieldAccessAcrossClasses) {
  auto Classes = [](ClassSet &Set) {
    ClassBuilder CB("Secretive");
    CB.field("hidden", "I", Access::Private);
    Set.add(CB.build());
  };
  EXPECT_FALSE(verifiesBody(
      "()I",
      [](MethodBuilder &M) {
        M.newobj("Secretive").getfield("Secretive", "hidden", "I").iret();
      },
      Classes));
}

TEST(Verifier, AllowsProtectedAccessFromSubclass) {
  ClassSet Set;
  ClassBuilder Base("Base");
  Base.field("shared", "I", Access::Protected);
  Set.add(Base.build());
  ClassBuilder Sub("Sub", "Base");
  Sub.method("read", "()I")
      .load(0)
      .getfield("Sub", "shared", "I")
      .iret();
  Set.add(Sub.build());
  ensureBuiltins(Set);
  EXPECT_TRUE(Verifier(Set).verifyAll().empty());

  // And rejects it from an unrelated class.
  ClassBuilder Other("Other");
  Other.method("read", "(LSub;)I")
      .load(1)
      .getfield("Sub", "shared", "I")
      .iret();
  Set.add(Other.build());
  EXPECT_FALSE(Verifier(Set).verifyAll().empty());
}

TEST(Verifier, RejectsFinalFieldWriteOutsideDeclaringClass) {
  ClassSet Set;
  ClassBuilder CB("Frozen");
  CB.field("k", "I", Access::Public, /*IsFinal=*/true);
  Set.add(CB.build());
  ClassBuilder Other("Other");
  Other.staticMethod("poke", "(LFrozen;)V")
      .load(0)
      .iconst(1)
      .putfield("Frozen", "k", "I")
      .ret();
  Set.add(Other.build());
  ensureBuiltins(Set);
  EXPECT_FALSE(Verifier(Set).verifyAll().empty());
}

//===----------------------------------------------------------------------===//
// Control flow and class-level checks
//===----------------------------------------------------------------------===//

TEST(Verifier, RejectsFallingOffTheEnd) {
  EXPECT_FALSE(verifiesBody("()V", [](MethodBuilder &M) {
    M.iconst(1).pop();
  }));
}

TEST(Verifier, RejectsBranchOutOfBounds) {
  EXPECT_FALSE(verifiesBody("()V", [](MethodBuilder &M) {
    M.raw({Opcode::Goto, 99, "", "", ""}).ret();
  }));
}

TEST(Verifier, RejectsEmptyBody) {
  ClassSet Set;
  ClassDef C("T", "Object");
  MethodDef M;
  M.Name = "m";
  M.Sig = "()V";
  M.IsStatic = true;
  C.Methods.push_back(M);
  Set.add(C);
  ensureBuiltins(Set);
  EXPECT_FALSE(Verifier(Set).verifyAll().empty());
}

TEST(Verifier, RejectsUnknownSuperclass) {
  ClassSet Set;
  Set.add(ClassBuilder("Orphan", "Ghost").build());
  ensureBuiltins(Set);
  EXPECT_FALSE(Verifier(Set).verifyAll().empty());
}

TEST(Verifier, RejectsSuperclassCycle) {
  ClassSet Set;
  ClassDef A("A", "B"), B("B", "A");
  Set.add(A);
  Set.add(B);
  ensureBuiltins(Set);
  EXPECT_FALSE(Verifier(Set).verifyAll().empty());
}

TEST(Verifier, RejectsFieldShadowing) {
  ClassSet Set;
  ClassBuilder A("A");
  A.field("x", "I");
  Set.add(A.build());
  ClassBuilder B("B", "A");
  B.field("x", "I");
  Set.add(B.build());
  ensureBuiltins(Set);
  EXPECT_FALSE(Verifier(Set).verifyAll().empty());
}

TEST(Verifier, RejectsDuplicateMembers) {
  ClassSet Set;
  ClassDef C("C", "Object");
  C.Fields.push_back({"x", "I", false, false, Access::Public});
  C.Fields.push_back({"x", "I", false, false, Access::Public});
  Set.add(C);
  ensureBuiltins(Set);
  EXPECT_FALSE(Verifier(Set).verifyAll().empty());
}

TEST(Verifier, RejectsFieldOfUnknownClassType) {
  ClassSet Set;
  ClassBuilder C("C");
  C.field("x", "LGhost;");
  Set.add(C.build());
  ensureBuiltins(Set);
  EXPECT_FALSE(Verifier(Set).verifyAll().empty());
}

TEST(Verifier, RejectsStaticnessChangeInOverride) {
  ClassSet Set;
  ClassBuilder A("A");
  A.method("m", "()I").iconst(1).iret();
  Set.add(A.build());
  ClassBuilder B("B", "A");
  B.staticMethod("m", "()I").iconst(2).iret();
  Set.add(B.build());
  ensureBuiltins(Set);
  EXPECT_FALSE(Verifier(Set).verifyAll().empty());
}

TEST(Verifier, ErrorMessagesCarryLocation) {
  std::vector<VerifyError> Errs =
      verifyMethodBody("()I", [](MethodBuilder &M) {
        M.iconst(1).iconst(2).iadd().iadd().iret();
      });
  ASSERT_FALSE(Errs.empty());
  EXPECT_EQ(Errs[0].ClassName, "T");
  EXPECT_EQ(Errs[0].Pc, 3);
  EXPECT_NE(Errs[0].str().find("T.m()I@3"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Parameterized: every conditional branch opcode checks its operand kinds.
//===----------------------------------------------------------------------===//

class BranchOperandTest : public ::testing::TestWithParam<Opcode> {};

TEST_P(BranchOperandTest, IntBranchRejectsRef) {
  Opcode Op = GetParam();
  EXPECT_FALSE(verifiesBody("()V", [Op](MethodBuilder &M) {
    M.nullconst().branch(Op, "t").ret().label("t").ret();
  }));
}

INSTANTIATE_TEST_SUITE_P(IntBranches, BranchOperandTest,
                         ::testing::Values(Opcode::IfEq, Opcode::IfNe,
                                           Opcode::IfLt, Opcode::IfGe,
                                           Opcode::IfGt, Opcode::IfLe));

class RefBranchOperandTest : public ::testing::TestWithParam<Opcode> {};

TEST_P(RefBranchOperandTest, RefBranchRejectsInt) {
  Opcode Op = GetParam();
  EXPECT_FALSE(verifiesBody("()V", [Op](MethodBuilder &M) {
    M.iconst(0).branch(Op, "t").ret().label("t").ret();
  }));
}

INSTANTIATE_TEST_SUITE_P(RefBranches, RefBranchOperandTest,
                         ::testing::Values(Opcode::IfNull,
                                           Opcode::IfNonNull));

//===----------------------------------------------------------------------===//
// Diagnostic quality: errors name the method, the pc, and the stack shape
//===----------------------------------------------------------------------===//

TEST(VerifierDiagnostics, UnderflowNamesTheOpcode) {
  std::vector<VerifyError> Errs =
      verifyMethodBody("()V", [](MethodBuilder &M) { M.pop().ret(); });
  ASSERT_FALSE(Errs.empty());
  EXPECT_NE(Errs[0].Message.find("operand stack underflow"),
            std::string::npos)
      << Errs[0].Message;
  EXPECT_NE(Errs[0].Message.find("pop"), std::string::npos)
      << Errs[0].Message;
  EXPECT_EQ(Errs[0].Pc, 0);
  EXPECT_EQ(Errs[0].MethodName, "m()V");
}

TEST(VerifierDiagnostics, TypeMismatchShowsTheWholeStack) {
  // iadd over [int, null]: the message must show what was actually there.
  std::vector<VerifyError> Errs =
      verifyMethodBody("()V", [](MethodBuilder &M) {
        M.iconst(1).nullconst().iadd().pop().ret();
      });
  ASSERT_FALSE(Errs.empty());
  EXPECT_NE(Errs[0].Message.find("expected int"), std::string::npos)
      << Errs[0].Message;
  EXPECT_NE(Errs[0].Message.find("(stack was [int, null])"),
            std::string::npos)
      << Errs[0].Message;
}

TEST(VerifierDiagnostics, JoinHeightMismatchShowsBothShapes) {
  // One branch leaves an extra int on the stack before the merge point.
  std::vector<VerifyError> Errs =
      verifyMethodBody("(I)V", [](MethodBuilder &M) {
        M.load(0).branch(Opcode::IfEq, "skip");
        M.iconst(7);
        M.label("skip");
        M.ret();
      });
  ASSERT_FALSE(Errs.empty());
  EXPECT_NE(Errs[0].Message.find("stack height mismatch"), std::string::npos)
      << Errs[0].Message;
  EXPECT_NE(Errs[0].Message.find("[int]"), std::string::npos)
      << Errs[0].Message;
  EXPECT_NE(Errs[0].Message.find("[]"), std::string::npos)
      << Errs[0].Message;
}

TEST(VerifierDiagnostics, ErrorStringCarriesMethodAndPc) {
  std::vector<VerifyError> Errs =
      verifyMethodBody("()V", [](MethodBuilder &M) { M.pop().ret(); });
  ASSERT_FALSE(Errs.empty());
  EXPECT_NE(Errs[0].str().find("T.m()V@0"), std::string::npos)
      << Errs[0].str();
}

//===----------------------------------------------------------------------===//
// computeStackShapes: the verifier's dataflow exposed to the analyzer
//===----------------------------------------------------------------------===//

TEST(StackShapes, StraightLineShapes) {
  ClassSet Set;
  ClassBuilder CB("T");
  CB.staticMethod("m", "()I").iconst(1).iconst(2).iadd().iret();
  Set.add(CB.build());
  ensureBuiltins(Set);
  const ClassDef &Cls = *Set.find("T");
  auto Shapes = computeStackShapes(Set, Cls, *Cls.findMethod("m"));
  ASSERT_EQ(Shapes.size(), 4u);
  ASSERT_TRUE(Shapes[0].has_value());
  EXPECT_TRUE(Shapes[0]->empty());
  ASSERT_TRUE(Shapes[2].has_value());
  ASSERT_EQ(Shapes[2]->size(), 2u); // before iadd: [int, int]
  EXPECT_EQ((*Shapes[2])[0], "int");
  ASSERT_TRUE(Shapes[3].has_value());
  EXPECT_EQ(Shapes[3]->size(), 1u); // before iret: [int]
}

TEST(StackShapes, UnreachableCodeHasNoShape) {
  ClassSet Set;
  ClassBuilder CB("T");
  CB.staticMethod("m", "()V").ret().ret(); // second ret unreachable
  Set.add(CB.build());
  ensureBuiltins(Set);
  const ClassDef &Cls = *Set.find("T");
  auto Shapes = computeStackShapes(Set, Cls, *Cls.findMethod("m"));
  ASSERT_EQ(Shapes.size(), 2u);
  EXPECT_TRUE(Shapes[0].has_value());
  EXPECT_FALSE(Shapes[1].has_value());
}

TEST(StackShapes, NonVerifyingMethodYieldsNothing) {
  ClassSet Set;
  ClassBuilder CB("T");
  CB.staticMethod("m", "()V").pop().ret(); // underflows
  Set.add(CB.build());
  ensureBuiltins(Set);
  const ClassDef &Cls = *Set.find("T");
  auto Shapes = computeStackShapes(Set, Cls, *Cls.findMethod("m"));
  EXPECT_TRUE(Shapes.empty());
}

namespace {

/// One table-driven computeStackShapes case: a method body plus the
/// expected shape at selected pcs. nullopt expects an unreachable pc.
struct ShapeCase {
  const char *Name;
  const char *Sig;
  std::function<void(MethodBuilder &, ClassSet &)> Build;
  std::vector<std::pair<size_t, std::optional<StackShape>>> Expect;
};

void addSiblingClasses(ClassSet &Set) {
  Set.add(ClassBuilder("Base").build());
  Set.add(ClassBuilder("LeafA", "Base").build());
  Set.add(ClassBuilder("LeafB", "Base").build());
}

} // namespace

/// Unreachable-block joins and back-edge widening: the analyzer trusts
/// these shapes when it checks ActiveMethodMapping pc maps, so the join
/// rules get pinned down case by case. Back-edge cases seed a loop-carried
/// stack slot with one type and feed a different one around the back edge;
/// the fixpoint must revisit the loop head and publish the widened merge
/// (null ∪ T = T, siblings = common super, mismatched arrays = Object),
/// not the first-visit shape.
TEST(StackShapes, JoinAndBackEdgeTable) {
  const std::vector<ShapeCase> Cases = {
      {"join-skips-unreachable-pred", "()V",
       [](MethodBuilder &M, ClassSet &) {
         // pc2 falls through into the join but is itself unreachable: the
         // join shape must come from the jump alone, not a bottom merge.
         M.iconst(1).jump("end").iconst(9).label("end").pop().ret();
       },
       {{0, StackShape{}},
        {1, StackShape{"int"}},
        {2, std::nullopt},
        {3, StackShape{"int"}},
        {4, StackShape{}}}},

      {"whole-loop-unreachable", "(I)V",
       [](MethodBuilder &M, ClassSet &) {
         // A complete loop (including its back edge) behind a ret: no pc
         // in it gets a shape, and the back edge must not resurrect it.
         M.ret();
         M.label("top").load(0).branch(Opcode::IfEq, "top").ret();
       },
       {{0, StackShape{}},
        {1, std::nullopt},
        {2, std::nullopt},
        {3, std::nullopt}}},

      {"back-edge-stable-shape", "(I)V",
       [](MethodBuilder &M, ClassSet &) {
         // Back-edge state equals the first-visit state: one pass
         // converges and the loop head keeps its seeded shape.
         M.label("top").load(0).branch(Opcode::IfNe, "top").ret();
       },
       {{0, StackShape{}}, {1, StackShape{"int"}}, {2, StackShape{}}}},

      {"back-edge-widens-null-to-class", "(I)V",
       [](MethodBuilder &M, ClassSet &) {
         // Loop-carried slot is null on entry, a T around the back edge.
         M.nullconst();
         M.label("top").load(0).branch(Opcode::IfEq, "done");
         M.pop().newobj("T").jump("top");
         M.label("done").pop().ret();
       },
       {{1, StackShape{"T"}},
        {2, StackShape{"T", "int"}},
        {6, StackShape{"T"}}}},

      {"back-edge-widens-siblings-to-super", "(I)V",
       [](MethodBuilder &M, ClassSet &Set) {
         addSiblingClasses(Set);
         // LeafA on entry, LeafB around the back edge: the head must
         // republish the common supertype once the fixpoint settles.
         M.newobj("LeafA");
         M.label("top").load(0).branch(Opcode::IfEq, "done");
         M.pop().newobj("LeafB").jump("top");
         M.label("done").pop().ret();
       },
       {{1, StackShape{"Base"}},
        {2, StackShape{"Base", "int"}},
        {6, StackShape{"Base"}}}},

      {"back-edge-widens-mismatched-arrays", "(I)V",
       [](MethodBuilder &M, ClassSet &) {
         // [I on entry, [LT; around the back edge: arrays of different
         // element types merge to Object, and downstream pcs see it.
         M.iconst(4).newarray("I");
         M.label("top").load(0).branch(Opcode::IfEq, "done");
         M.pop().iconst(4).newarray("LT;").jump("top");
         M.label("done").pop().ret();
       },
       {{1, StackShape{"int"}},
        {2, StackShape{"Object"}},
        {3, StackShape{"Object", "int"}},
        {8, StackShape{"Object"}}}},
  };

  for (const ShapeCase &C : Cases) {
    SCOPED_TRACE(C.Name);
    ClassSet Set;
    ClassBuilder CB("T");
    MethodBuilder &M = CB.staticMethod("m", C.Sig);
    C.Build(M, Set);
    Set.add(CB.build());
    ensureBuiltins(Set);
    const ClassDef &Cls = *Set.find("T");
    ASSERT_TRUE(Verifier(Set).verifyAll().empty());
    auto Shapes = computeStackShapes(Set, Cls, *Cls.findMethod("m"));
    ASSERT_FALSE(Shapes.empty());
    for (const auto &[Pc, Want] : C.Expect) {
      SCOPED_TRACE("pc " + std::to_string(Pc));
      ASSERT_LT(Pc, Shapes.size());
      ASSERT_EQ(Shapes[Pc].has_value(), Want.has_value());
      if (Want) {
        EXPECT_EQ(*Shapes[Pc], *Want);
      }
    }
  }
}
