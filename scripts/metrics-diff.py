#!/usr/bin/env python3
"""Diff two `jvolve-run --metrics=json` dumps.

    scripts/metrics-diff.py before.json after.json [--threshold PCT]

Prints a table of every metric whose value changed between the two
snapshots: counters and gauges compare `value`, histograms compare
`count`, `mean`, and `p95`. Metrics present in only one dump are listed
as added/removed. Exits 0 when nothing changed beyond --threshold
(relative percent, default 0: any change reports and exits 1), which
makes the script usable as a regression gate between two runs of the
same workload.

`--require METRIC` (repeatable) asserts that METRIC exists in the after
dump; a missing required metric prints a diagnostic and exits 2, so
experiment scripts can verify an instrumented path actually ran (e.g.
`--require net.shed_total` after a drain/shed experiment). METRIC may be
a shell-style glob (`--require 'dsu.analysis.*'`), which passes when at
least one metric name matches the pattern.

`--require-any PREFIX` (repeatable) asserts that at least one metric in
the after dump has a name starting with PREFIX — the family-level form
of --require for subsystems whose exact metric names vary by run (e.g.
`--require-any telemetry.` after a traced suite pass). Exits 2 with a
diagnostic when no name matches.

`--max-delta METRIC=PCT` (repeatable) turns the diff into a hard budget
for one metric: if any field of METRIC moved by more than PCT percent
(relative), the breach prints a diagnostic and the script exits 2 —
regardless of --threshold, which only controls reporting. Use it to
gate steady-state costs, e.g. `--max-delta interp.dispatch_ticks=0`
asserts a retired lazy barrier left the interpreter's dispatch count
bit-for-bit unchanged.
"""

import argparse
import fnmatch
import json
import sys


def load(path):
    """Returns {name: metric-dict}. Accepts a bare snapshot or a full
    jvolve-run log where the snapshot is one {"metrics": ...} line."""
    with open(path) as f:
        text = f.read()
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        doc = None
        for line in text.splitlines():
            if line.startswith('{"metrics"'):
                doc = json.loads(line)
                break
        if doc is None:
            sys.exit(f"metrics-diff: no metrics snapshot found in {path}")
    return {m["name"]: m for m in doc["metrics"]}


def fields_of(metric):
    """The comparable (field, value) pairs of one metric entry."""
    if metric.get("kind") == "histogram":
        return [(k, metric.get(k, 0)) for k in ("count", "mean", "p95")]
    return [("value", metric.get("value", 0))]


def rel_change(before, after):
    if before == after:
        return 0.0
    if before == 0:
        return float("inf")
    return abs(after - before) / abs(before) * 100.0


def main():
    ap = argparse.ArgumentParser(
        description="diff two jvolve --metrics=json dumps")
    ap.add_argument("before")
    ap.add_argument("after")
    ap.add_argument("--threshold", type=float, default=0.0,
                    help="ignore relative changes below this percent")
    ap.add_argument("--require", action="append", default=[],
                    metavar="METRIC",
                    help="fail (exit 2) unless METRIC is present in the "
                         "after dump; repeatable")
    ap.add_argument("--require-any", action="append", default=[],
                    metavar="PREFIX",
                    help="fail (exit 2) unless some metric in the after "
                         "dump starts with PREFIX; repeatable")
    ap.add_argument("--max-delta", action="append", default=[],
                    metavar="METRIC=PCT",
                    help="fail (exit 2) if any field of METRIC changed by "
                         "more than PCT percent; repeatable")
    args = ap.parse_args()

    budgets = {}
    for spec in args.max_delta:
        name, sep, pct = spec.partition("=")
        if not sep:
            ap.error(f"--max-delta expects METRIC=PCT, got {spec!r}")
        try:
            budgets[name] = float(pct)
        except ValueError:
            ap.error(f"--max-delta {spec!r}: {pct!r} is not a number")

    before = load(args.before)
    after = load(args.after)

    missing = [m for m in args.require
               if not any(fnmatch.fnmatchcase(name, m) for name in after)]
    if missing:
        for m in missing:
            print(f"metrics-diff: required metric missing: {m}",
                  file=sys.stderr)
        return 2

    unmatched = [p for p in args.require_any
                 if not any(name.startswith(p) for name in after)]
    if unmatched:
        for p in unmatched:
            print(f"metrics-diff: no metric matches required prefix: {p}",
                  file=sys.stderr)
        return 2

    breaches = []
    for name, budget in sorted(budgets.items()):
        if name not in before or name not in after:
            where = "before" if name not in before else "after"
            breaches.append(f"{name}: absent from the {where} dump")
            continue
        b_fields = dict(fields_of(before[name]))
        a_fields = dict(fields_of(after[name]))
        for field, b in b_fields.items():
            pct = rel_change(b, a_fields.get(field, 0))
            if pct > budget:
                moved = ("from zero" if pct == float("inf")
                         else f"{pct:+.1f}%")
                breaches.append(
                    f"{name}.{field}: {b:g} -> {a_fields.get(field, 0):g} "
                    f"({moved}, budget {budget:g}%)")
    if breaches:
        for b in breaches:
            print(f"metrics-diff: delta budget exceeded: {b}",
                  file=sys.stderr)
        return 2

    rows = []
    for name in sorted(set(before) | set(after)):
        if name not in before:
            rows.append((name, "(added)", "", "", ""))
            continue
        if name not in after:
            rows.append((name, "(removed)", "", "", ""))
            continue
        b_fields = dict(fields_of(before[name]))
        a_fields = dict(fields_of(after[name]))
        for field in b_fields:
            b, a = b_fields[field], a_fields.get(field, 0)
            pct = rel_change(b, a)
            if pct > args.threshold:
                delta = "new" if pct == float("inf") else f"{pct:+.1f}%"
                rows.append((name, field, f"{b:g}", f"{a:g}", delta))

    if not rows:
        print(f"metrics-diff: no changes above {args.threshold:g}%")
        return 0

    widths = [max(len(str(r[i])) for r in rows + [
        ("metric", "field", "before", "after", "change")]) for i in range(5)]
    header = ("metric", "field", "before", "after", "change")
    for row in [header] + rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)).rstrip())
    return 1


if __name__ == "__main__":
    sys.exit(main())
