#!/usr/bin/env python3
"""Summarize a jvolve-chaos --json campaign report.

    jvolve-chaos --first-order --json > report.json
    scripts/chaos-report.py report.json
    jvolve-chaos --first-order --json | scripts/chaos-report.py -

Prints the coverage headline, the per-mode unreachable-site tally, and
every oracle violation with its ready-to-paste reproducer. Exits 1 when
the campaign found violations or left attempted probe points uncovered
(the same gate as jvolve-chaos --check, applied after the fact to a
stored report); --no-gate makes it purely informational.
"""

import argparse
import json
import sys
from collections import Counter


def main():
    ap = argparse.ArgumentParser(
        description="summarize a jvolve-chaos --json report")
    ap.add_argument("report", help="report file, or - for stdin")
    ap.add_argument("--no-gate", action="store_true",
                    help="always exit 0, even on violations or "
                         "incomplete coverage")
    args = ap.parse_args()

    text = (sys.stdin.read() if args.report == "-"
            else open(args.report).read())
    try:
        rep = json.loads(text)
    except json.JSONDecodeError as e:
        sys.exit(f"chaos-report: {args.report}: not a campaign report: {e}")

    points = rep.get("probe_points", 0)
    covered = rep.get("covered", 0)
    coverage = rep.get("coverage", 1.0)
    print(f"chaos-report: {points} probe point(s), {covered} covered "
          f"({100.0 * coverage:.1f}%), "
          f"{rep.get('enumerated', points)} enumerable, "
          f"{rep.get('executions', 0)} execution(s)")
    if rep.get("skipped_by_budget", 0):
        print(f"  budget truncation: {rep['skipped_by_budget']} "
              f"point(s) skipped (stable prefix; rerun unbounded for "
              f"the full sweep)")
    if rep.get("second_order_capped", 0):
        print(f"  second-order windows capped: "
              f"{rep['second_order_capped']} slot(s) beyond the "
              f"recovery-path bound")

    # "mode: site" entries collapse to one line per mode.
    by_mode = Counter(u.split(":", 1)[0]
                      for u in rep.get("unreachable_in_mode", []))
    for mode, n in sorted(by_mode.items()):
        print(f"  unreachable in {mode}: {n} site(s)")

    violations = rep.get("violations", [])
    if not violations:
        print("  oracles: all invariants hold on every execution")
    for v in violations:
        print(f"  VIOLATION [{v.get('mode', '?')}] "
              f"status {v.get('status', '?')}: {v.get('spec', '')}")
        for line in v.get("violations", []):
            print(f"    {line}")
        if v.get("reproducer"):
            print(f"    repro: {v['reproducer']}")

    if args.no_gate:
        return 0
    if violations:
        print(f"chaos-report: {len(violations)} violation(s)",
              file=sys.stderr)
        return 1
    if covered < points:
        print(f"chaos-report: coverage below 100% "
              f"({covered}/{points})", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
