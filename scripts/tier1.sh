#!/usr/bin/env bash
# Tier-1 verification: the full suite in the default configuration, the
# same suite again with telemetry + JSONL tracing enabled (catches crashes
# that only instrumented paths can hit), the DSU suites a third time under
# JVOLVE_LAZY=1 (every update commits through the lazy-transform engine),
# a fourth pass with the full streaming-telemetry pipeline live (JSONL
# session + windowed aggregation on every VM, plus a ledger-balance check:
# every event attempted is either streamed or counted dropped), the
# bench_lazy_pause trade-off gate, the streaming-telemetry overhead gate
# (bench_telemetry --check + a coarse metrics-diff backstop), the canary
# pause and revert-convergence gates (an injected health breach must
# auto-revert and leave zero residual), the chaos-campaign gate (the
# exhaustive first-order fault sweep must cover every enumerable probe
# point with zero oracle violations), then the update-transaction
# (rollback), quiescence-escalation, and GC-fuzz suites under a sanitizer
# build — including a pass with both update-time fault sites armed via
# the environment.
#
#   scripts/tier1.sh [sanitizer]
#
# sanitizer: address (default) or undefined; set JVOLVE_SKIP_SANITIZE=1 to
# run only the default-configuration suite.
set -euo pipefail
cd "$(dirname "$0")/.."

SAN="${1:-address}"
JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B build -S .
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

# Static update-safety analysis: predict the applicability column of
# Tables 2-4 for all 22 modeled updates; exit non-zero on any drift from
# the paper's expected verdicts. The metrics snapshot feeds the schema
# and runtime-budget gates below.
ANALYZE_JSON="$(mktemp /tmp/jvolve-tier1-analyze.XXXXXX.json)"
build/tools/jvolve-analyze --app all --check --metrics-out "$ANALYZE_JSON"

# Transformer synthesis gate: synthesize object/class transformers for
# all 22 updates from static evidence, apply every release twice on live
# VMs (handwritten vs synthesized), and fail on any outcome or
# certification mismatch.
build/tools/jvolve-analyze --synthesize --app all --check > /dev/null

# Impact-bounded drain gate: a lazy drain that bulk-settles provably-
# untouched classes and certifies the impact closure only must reach the
# same certified heap (status, certification, per-class census) as the
# full drain on every stream.
build/tools/jvolve-analyze --impact --app all --check > /dev/null

# Analysis metrics schema + runtime budget: the dsu.analysis.* family
# must be published, and a second analyzer run must land within +50% of
# the first run's whole-suite analysis runtime (summed over the 22
# streams, so per-release jitter does not trip the budget).
ANALYZE_JSON2="$(mktemp /tmp/jvolve-tier1-analyze2.XXXXXX.json)"
build/tools/jvolve-analyze --app all --metrics-out "$ANALYZE_JSON2" > /dev/null
scripts/metrics-diff.py "$ANALYZE_JSON" "$ANALYZE_JSON2" \
  --require 'dsu.analysis.*' \
  --threshold 100 \
  --max-delta dsu.analysis.restricted_precise=0 \
  --max-delta dsu.analysis.restricted_cha=0 \
  --max-delta dsu.analysis.restricted_conservative=0 \
  --max-delta dsu.analysis.runtime_ms=50 \
  > /dev/null
rm -f "$ANALYZE_JSON" "$ANALYZE_JSON2"

# Static analysis over the DSU and bytecode layers (.clang-tidy at the
# repo root picks the checks). Skipped when the tool is not installed.
if command -v clang-tidy > /dev/null 2>&1; then
  cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
  clang-tidy -p build --quiet src/dsu/*.cpp src/bytecode/*.cpp
else
  echo "tier1: clang-tidy not found; skipping static-analysis pass"
fi

# Telemetry pass: every VM the suite builds records metrics and streams
# trace events. Serial (-j 1) because the processes share one trace file.
TRACE_OUT="$(mktemp /tmp/jvolve-tier1-trace.XXXXXX.jsonl)"
JVOLVE_TELEMETRY=1 JVOLVE_TRACE_OUT="$TRACE_OUT" \
  ctest --test-dir build --output-on-failure -j 1
rm -f "$TRACE_OUT"

# Lazy pass: the suite a third time with every update committed through
# the lazy-transform engine (dsu/LazyTransform.h). Tests that assert
# eager rollback semantics for post-commit transformer faults skip
# themselves under this variable.
JVOLVE_LAZY=1 ctest --test-dir build --output-on-failure -j "$JOBS"

# Code-versioning pass: the suite again with every strictly body-only
# bundle committed through the per-method CodeVersionManager
# (dsu/CodeVersion.h) instead of the safe-point pipeline. Class-shape
# updates are unaffected, so the safe-point suites keep their meaning;
# tests that assert pipeline mechanics on body-only bundles skip
# themselves under this variable.
JVOLVE_CODEVERSION=1 ctest --test-dir build --output-on-failure -j "$JOBS"

# Streaming pass: the suite a fourth time with the whole streaming
# pipeline live in every VM — a JSONL session (per-thread buffers, the
# background writer, drop accounting) plus 2000-tick windowed
# aggregation. Serial: the processes share one trace file.
STREAM_TRACE="$(mktemp /tmp/jvolve-tier1-stream.XXXXXX.jsonl)"
JVOLVE_TELEMETRY=1 JVOLVE_TRACE_OUT="$STREAM_TRACE" \
  JVOLVE_STATS_WINDOW=2000 \
  ctest --test-dir build --output-on-failure -j 1
rm -f "$STREAM_TRACE"

# Ledger-balance check on a full instrumented serve run: the telemetry.*
# gauges must exist (require-any) and account for every event — attempted
# equals streamed plus dropped, nothing silent.
TEL_JSON="$(mktemp /tmp/jvolve-tier1-telemetry.XXXXXX.json)"
TEL_TRACE="$(mktemp /tmp/jvolve-tier1-teltrace.XXXXXX.jsonl)"
JVOLVE_TRACE_OUT="$TEL_TRACE" JVOLVE_STATS_WINDOW=2000 \
  build/tools/jvolve-serve email --metrics-out "$TEL_JSON" > /dev/null
scripts/metrics-diff.py "$TEL_JSON" "$TEL_JSON" \
  --require-any telemetry. > /dev/null
python3 - "$TEL_JSON" <<'EOF'
import json, sys
m = {x["name"]: x.get("value", 0)
     for x in json.load(open(sys.argv[1]))["metrics"]}
a = m.get("telemetry.events_attempted", 0)
s = m.get("telemetry.events_streamed", 0)
d = m.get("telemetry.dropped_total", 0)
if a != s + d:
    sys.exit(f"tier1: telemetry ledger imbalanced: "
             f"{a} attempted != {s} streamed + {d} dropped")
print(f"tier1: telemetry ledger balanced "
      f"({a} attempted = {s} streamed + {d} dropped)")
EOF
rm -f "$TEL_JSON" "$TEL_TRACE"

# The lazy trade-off triangle: lazy pause below eager pause, transient
# overhead decaying to no-update parity after the barrier retires, and
# indirection overhead staying flat. Exit 1 on any violated relation.
build/bench/bench_lazy_pause --check

# Lazy steady-state convergence: serve the same release history eagerly
# and lazily; the final snapshots must agree on updates applied, and the
# lazy run must end fully drained (no pending shells, no failed
# transforms). metrics-diff exits 2 on a breached budget; 1 just reports
# the expected dsu.lazy.* movement.
EAGER_JSON="$(mktemp /tmp/jvolve-tier1-eager.XXXXXX.json)"
LAZY_JSON="$(mktemp /tmp/jvolve-tier1-lazy.XXXXXX.json)"
build/tools/jvolve-serve email --metrics-out "$EAGER_JSON" > /dev/null
build/tools/jvolve-serve email --lazy --metrics-out "$LAZY_JSON" > /dev/null
scripts/metrics-diff.py "$EAGER_JSON" "$LAZY_JSON" --threshold 1000 \
  --require dsu.lazy.updates \
  --max-delta dsu.updates.applied=0 \
  --max-delta dsu.lazy.pending=0 \
  --max-delta dsu.lazy.failed_transforms=0 \
  > /dev/null || [ $? -ne 2 ]
rm -f "$LAZY_JSON"

# Streaming-telemetry overhead gate: the raw write path, the paired
# suite-overhead relation (<= 10% with a session attached), and the
# accounting relation (attempted == streamed + dropped) — the binary
# exits 1 on any violation. The off/on suite histograms then pass a
# coarse metrics-diff backstop: the precise paired estimate lives in the
# binary; the 50% budget here only catches a gross (order-of-magnitude)
# regression that slipped past it.
build/bench/bench_telemetry --check
scripts/metrics-diff.py BENCH_telemetry_off.json BENCH_telemetry_on.json \
  --threshold 1000 \
  --max-delta bench.telemetry.suite_ms=50 \
  > /dev/null || [ $? -ne 2 ]
rm -f BENCH_telemetry.json BENCH_telemetry_off.json BENCH_telemetry_on.json

# Canary pause gate: every trial must revert with zero residual (the
# binary exits 1 otherwise), and the revert pause must stay within 3x
# (a +200% delta) of the forward pause — the same GC + transformers
# bill paid backwards.
build/bench/bench_canary --check
scripts/metrics-diff.py BENCH_canary_forward.json BENCH_canary_revert.json \
  --threshold 1000 \
  --max-delta bench.canary.pause_ms=200 \
  > /dev/null || [ $? -ne 2 ]
rm -f BENCH_canary.json BENCH_canary_forward.json BENCH_canary_revert.json
rm -f BENCH_lazy_pause.json

# Revert convergence: arm the canary-health-breach site, serve the email
# stream with a window on every update, and require that the run both
# completed a revert (dsu.revert.completed is only registered when one
# converges) and left nothing behind — zero residual new-version
# objects, zero failed reverts — relative to the eager baseline above.
CANARY_JSON="$(mktemp /tmp/jvolve-tier1-canary.XXXXXX.json)"
build/tools/jvolve-serve email --canary --inject canary-health-breach:1 \
  --metrics-out "$CANARY_JSON" > /dev/null
scripts/metrics-diff.py "$EAGER_JSON" "$CANARY_JSON" --threshold 1000 \
  --require dsu.revert.completed \
  --max-delta dsu.revert.residual_new_objects=0 \
  --max-delta dsu.revert.failed=0 \
  > /dev/null || [ $? -ne 2 ]
rm -f "$EAGER_JSON" "$CANARY_JSON"

# Chaos-campaign gate: sweep every enumerable first-order (site,
# fire-index) probe point on the email and jetty streams; --check fails
# on any oracle violation or on an attempted point whose fault did not
# fire (coverage below 100%). The run is deterministic (fresh VMs,
# virtual time, fixed seeds), so this is the same sweep every CI pass.
# chaos-report.py re-applies the gate to the stored JSON report, and
# metrics-diff asserts the fault.coverage.{probes,covered} gauges made
# it into the snapshot unchanged.
# Body-only commit-pause gate: the versioned active-version switch must
# beat the safe-point pipeline at every heap size, stay ~zero (<= 2 ms),
# and stay flat while the safe-point pause grows with the heap — the
# binary exits 1 on any violated relation.
build/bench/bench_codeversion --check
rm -f BENCH_codeversion.json

# Code-versioning observability: a --codeversion serve run must publish
# the dsu.codeversion.* gauge family. The gauges are deliberately not
# preregistered — their presence proves the versioned commit path ran.
CV_JSON="$(mktemp /tmp/jvolve-tier1-codeversion.XXXXXX.json)"
build/tools/jvolve-serve email --codeversion --metrics-out "$CV_JSON" > /dev/null
scripts/metrics-diff.py "$CV_JSON" "$CV_JSON" \
  --require 'dsu.codeversion.*' > /dev/null
rm -f "$CV_JSON"

CHAOS_JSON="$(mktemp /tmp/jvolve-tier1-chaos.XXXXXX.json)"
CHAOS_REPORT="$(mktemp /tmp/jvolve-tier1-chaosrep.XXXXXX.json)"
build/tools/jvolve-chaos --first-order --check --json \
  --metrics-out "$CHAOS_JSON" > "$CHAOS_REPORT"
scripts/chaos-report.py "$CHAOS_REPORT"
scripts/metrics-diff.py "$CHAOS_JSON" "$CHAOS_JSON" \
  --require fault.coverage.probes \
  --require fault.coverage.covered \
  --max-delta fault.coverage.covered=0 \
  > /dev/null
rm -f "$CHAOS_JSON" "$CHAOS_REPORT"

if [ "${JVOLVE_SKIP_SANITIZE:-0}" != "1" ]; then
  cmake -B "build-$SAN" -S . -DJVOLVE_SANITIZE="$SAN"
  cmake --build "build-$SAN" -j "$JOBS" \
    --target dsu_rollback_test quiescence_test gc_fuzz_test
  ctest --test-dir "build-$SAN" --output-on-failure -j "$JOBS" \
    -R 'DsuRollback|Quiescence|GcFuzz'
  # Escalation under injected faults: arm the watchdog-expiry and
  # slow-client sites through the environment (the path production VMs
  # take) and rerun the fault-driven cases under the sanitizer.
  JVOLVE_INJECT='quiescence-watchdog-expiry:1:3,net-slow-client:1:2' \
    "build-$SAN/tests/quiescence_test" --gtest_filter='QuiescenceFault.*'
fi
